"""Sharded multi-process serving fleet: horizontal scale-out of serving.

The paper's offline clustering makes the serving artifact tiny — a
``(k, p)`` prototype dictionary plus a small weight set — so scaling
reads is replication, not resharding of model state.  This module turns
one single-process :class:`~repro.serving.ForecastServer` into a fleet:

- :class:`ShardRouter` consistent-hashes entity ids across ``N`` worker
  *processes* (spawn-safe), each of which owns a full local serving
  stack — an :class:`~repro.serving.EntitySessionStore`, a
  :class:`~repro.serving.MicroBatcher`, and a versioned
  :class:`~repro.serving.ForecastCache` — over a bit-identical model
  replica rebuilt from :meth:`FOCUSForecaster.snapshot
  <repro.core.model.FOCUSForecaster.snapshot>`;
- the read-only prototype bank is published to workers through
  :class:`PrototypeBank`, a ``multiprocessing.shared_memory`` segment
  with a seqlock header carrying the **prototype epoch**.  Workers fence
  every serve on the epoch the router advertises: a worker whose local
  bank (and the shared segment itself) is older than the advertised
  epoch refuses to serve (:class:`StaleEpochError`) rather than answer
  from a stale dictionary.  :meth:`ShardRouter.set_prototypes`
  republishes the bank and bumps the epoch atomically (writers flip the
  seqlock odd before touching data, even after), so readers never see a
  torn bank;
- :func:`replay_fleet` scatter-gathers multi-entity replay traffic:
  streams are partitioned by the hash ring, each shard replays its
  partition locally (interleaved in time order, micro-batched per step,
  identical semantics to :func:`~repro.serving.replay_streams`), and the
  responses are merged back in global issue order.  Because every
  per-row computation is batch-independent, the merged responses are
  per-row bit-identical (float64) to a single-process replay of the
  same streams — the invariant ``tests/serving/test_fleet.py`` pins;
- **fleet-level admission control**: the router bounds in-flight
  requests per shard; excess traffic is answered immediately from the
  router's last-row cache (persistence fallback,
  ``source="rejected:fleet"``) without touching the worker;
- **worker health**: a per-worker receiver thread detects crashed
  workers (pipe EOF / kill) and the hash ring rehashes their entities
  onto the surviving shards; :meth:`ShardRouter.ping` and
  :meth:`ShardRouter.stats` surface liveness and per-shard serving
  counters (published to telemetry with ``shard`` labels).

Everything crossing the process boundary is plain picklable data
(numpy arrays, dataclasses); the model replica is shipped once at spawn
and only the tiny prototype bank is shared afterwards.
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
import itertools
import os
import threading
import time
from contextlib import contextmanager
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.core.model import FOCUSForecaster
from repro.robustness.health import NAN_POLICIES, HealthMonitor
from repro.serving.batcher import ForecastResponse
from repro.serving.server import ForecastServer, ServingConfig
from repro.telemetry.aggregate import FleetAggregator, registry_snapshot
from repro.telemetry.context import (
    RequestTrace,
    StageSpan,
    TraceBuffer,
    mint_context,
    record_stage,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slo import SloConfig, SloMonitor, response_ok

__all__ = [
    "FleetConfig",
    "FleetError",
    "HashRing",
    "PrototypeBank",
    "ShardRouter",
    "StaleEpochError",
    "WorkerCrashedError",
    "replay_fleet",
]

_HEADER_SLOTS = 2  # int64 seqlock counter, int64 epoch
_HEADER_BYTES = _HEADER_SLOTS * 8

# BLAS pools size themselves at library load; workers serve small
# per-shard batches where intra-op threading only causes cross-shard
# oversubscription, so spawn them pinned to one thread each.
_WORKER_ENV = {
    "OMP_NUM_THREADS": "1",
    "OPENBLAS_NUM_THREADS": "1",
    "MKL_NUM_THREADS": "1",
}


class FleetError(RuntimeError):
    """Base class for fleet-level serving failures."""


class StaleEpochError(FleetError):
    """A worker refused to serve from a prototype bank older than the
    epoch the router advertised (the fencing invariant)."""


class WorkerCrashedError(FleetError):
    """The target worker process died before answering."""


@dataclasses.dataclass
class FleetConfig:
    """Knobs of the sharded fleet (see ``docs/api.md``)."""

    shards: int = 2
    vnodes: int = 64
    max_batch: int = 32
    # Forward engine inside every shard worker: "eager" or "plan".
    engine: str = "eager"
    cache_capacity: int = 512
    use_cache: bool = True
    nan_policy: str = "reject"
    fallback: str = "persistence"
    seasonal_period: int | None = None
    max_inflight: int = 64
    record_events: bool = False
    call_timeout: float = 60.0
    limit_worker_blas: bool = True
    trace: bool = False
    trace_keep: int = 256
    slo: SloConfig | None = None
    metrics_every_s: float = 0.0

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.nan_policy not in NAN_POLICIES:
            raise ValueError(
                f"unknown nan_policy {self.nan_policy!r}; choose from {NAN_POLICIES}"
            )
        if self.metrics_every_s < 0:
            raise ValueError("metrics_every_s must be non-negative")
        if self.engine not in ("eager", "plan"):
            raise ValueError(
                f"unknown engine {self.engine!r}; choose 'eager' or 'plan'"
            )


@contextmanager
def _untracked_shared_memory():
    """Attach to shared memory without resource-tracker registration.

    On POSIX Pythons < 3.13 (no ``track=False``), merely *attaching* to
    a segment registers it with the resource tracker; spawn children
    share the parent's tracker, so a worker's registration (or a later
    unregister) corrupts the owner's entry and the tracker either
    double-unlinks the segment or warns at exit.  Workers only borrow
    the router's segment — suppress registration for the attach.
    """
    try:  # pragma: no cover — depends on interpreter internals
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover
        yield
        return
    original = resource_tracker.register

    def _register(name, rtype):
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = _register
    try:
        yield
    finally:
        resource_tracker.register = original


def _stable_hash(key: str) -> int:
    """64-bit stable hash (independent of PYTHONHASHSEED and process)."""
    return int.from_bytes(hashlib.blake2b(key.encode(), digest_size=8).digest(), "big")


class HashRing:
    """Consistent-hash ring over shard ids with virtual nodes.

    Routing is deterministic across processes and runs (the hash is
    keyed on blake2b, not the seeded builtin ``hash``), and removing a
    shard only remaps the entities that lived on it — the property the
    crashed-worker rehash relies on.
    """

    def __init__(self, shards: int, vnodes: int = 64):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        points = []
        for shard in range(shards):
            for replica in range(vnodes):
                points.append((_stable_hash(f"shard-{shard}-vnode-{replica}"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._shards = [shard for _, shard in points]
        self.num_shards = shards

    def shard_for(self, entity_id: str, alive: frozenset | set | None = None) -> int:
        """The owning shard for ``entity_id`` among ``alive`` shards."""
        if alive is not None and not alive:
            raise FleetError("no live shards to route to")
        index = bisect.bisect(self._points, _stable_hash(entity_id))
        for offset in range(len(self._shards)):
            shard = self._shards[(index + offset) % len(self._shards)]
            if alive is None or shard in alive:
                return shard
        raise FleetError("no live shards to route to")  # pragma: no cover

    def partition(
        self, entity_ids, alive: frozenset | set | None = None
    ) -> dict[int, list[str]]:
        """Group entity ids by owning shard (insertion order preserved)."""
        groups: dict[int, list[str]] = {}
        for entity_id in entity_ids:
            groups.setdefault(self.shard_for(entity_id, alive), []).append(entity_id)
        return groups


class PrototypeBank:
    """The shared-memory prototype publication channel.

    Layout: ``int64[2]`` header (seqlock counter, epoch) followed by the
    ``(k, p)`` float64 prototype dictionary.  Writers bump the seqlock
    odd before touching data and even after; readers retry until they
    observe a stable even counter, so a concurrently republished bank is
    never read torn — the "atomic hot-swap" half of epoch fencing.
    """

    def __init__(self, num_prototypes: int, segment_length: int,
                 name: str | None = None, create: bool = True):
        self.shape = (num_prototypes, segment_length)
        size = _HEADER_BYTES + num_prototypes * segment_length * 8
        self._owner = create
        if create:
            self._shm = shared_memory.SharedMemory(create=True, size=size, name=name)
        else:
            with _untracked_shared_memory():
                self._shm = shared_memory.SharedMemory(name=name)
        self._header = np.frombuffer(self._shm.buf, dtype=np.int64, count=_HEADER_SLOTS)
        self._data = np.frombuffer(
            self._shm.buf, dtype=np.float64,
            count=num_prototypes * segment_length, offset=_HEADER_BYTES,
        ).reshape(self.shape)
        if create:
            self._header[:] = 0

    @property
    def name(self) -> str:
        return self._shm.name

    def publish(self, prototypes: np.ndarray, epoch: int) -> int:
        """Atomically install a new bank under ``epoch`` (writer side).

        ``epoch`` must strictly exceed the currently published epoch:
        the epoch is the fencing token workers compare against the
        router's advertisement, so publishing an equal or older epoch
        would let a lagging writer silently retire a newer bank.
        """
        prototypes = np.asarray(prototypes, dtype=np.float64)
        if prototypes.shape != self.shape:
            raise ValueError(
                f"prototype bank shape {prototypes.shape} != expected {self.shape}"
            )
        current = int(self._header[1])
        if epoch <= current:
            raise ValueError(
                f"epoch must be strictly increasing: {epoch} <= published {current}"
            )
        self._header[0] += 1  # odd: update in progress
        self._data[...] = prototypes
        self._header[1] = epoch
        self._header[0] += 1  # even: stable
        return epoch

    def read(self, max_retries: int = 10_000) -> tuple[int, np.ndarray]:
        """A consistent ``(epoch, bank copy)`` snapshot (reader side).

        Retries are bounded: a writer that crashed mid-publish leaves
        the seqlock odd forever, and an unbounded spin would hang every
        reader with it.  After ``max_retries`` failed attempts (~1 s at
        the default) the reader raises :class:`FleetError` instead, so
        a torn bank surfaces as a servable error, never a wedged worker.
        """
        for _ in range(max_retries):
            before = int(self._header[0])
            if before % 2 == 0:
                epoch = int(self._header[1])
                bank = self._data.copy()
                if int(self._header[0]) == before:
                    return epoch, bank
            time.sleep(1e-4)  # writer mid-swap; yield the (possibly one) CPU
        raise FleetError(
            f"prototype bank seqlock unstable after {max_retries} retries "
            "(writer crashed mid-publish?)"
        )

    @property
    def epoch(self) -> int:
        return self.read()[0]

    def close(self) -> None:
        # Release numpy views before closing: the memoryview cannot be
        # released while exported buffers are alive.
        self._header = None
        self._data = None
        self._shm.close()

    def unlink(self) -> None:
        if self._owner:
            self._shm.unlink()


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _local_replay(server: ForecastServer, streams: dict[str, np.ndarray],
                  order: dict[str, int], forecast_every: int,
                  warmup: int | None) -> tuple[list, list]:
    """One shard's half of the scatter-gather replay.

    Mirrors :func:`~repro.serving.replay_streams` exactly — interleaved
    ingestion in time order, micro-batched forecasts for the due
    entities of each step — but tags every response with
    ``(step, global stream index)`` so the router can merge shard
    results back into global issue order, and records the wall clock of
    each executed batch for the latency percentiles in ``repro bench``.
    """
    if not streams:
        return [], []
    lookback = server.model.config.lookback
    warmup = lookback if warmup is None else warmup
    length = min(len(stream) for stream in streams.values())
    tagged: list[tuple[int, int, ForecastResponse]] = []
    latencies: list[float] = []
    for step in range(length):
        due: list[str] = []
        for entity_id, stream in streams.items():
            server.observe(entity_id, stream[step])
            if (
                step + 1 >= warmup
                and (step + 1) % forecast_every == 0
                and server.store.session(entity_id).ready
            ):
                due.append(entity_id)
        if not due:
            continue
        started = time.perf_counter()
        responses = server.forecast_many(due)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        for entity_id, response in zip(due, responses):
            tagged.append((step, order[entity_id], response))
            latencies.append(elapsed_ms / len(due))
    return tagged, latencies


class _ShardWorker:
    """Worker-side state: model replica + full local serving stack."""

    def __init__(self, spec: dict):
        self.shard = spec["shard"]
        self.model = FOCUSForecaster.from_snapshot(spec["snapshot"])
        serving = spec["serving"]
        # A process-local registry when the router runs instrumented:
        # its cumulative snapshots ship to the router-side
        # FleetAggregator over the control channel.
        self.registry = MetricsRegistry() if spec.get("telemetry") else None
        self.server = ForecastServer(
            self.model, ServingConfig(**serving), telemetry=self.registry
        )
        # Cross-process trace spans name the process that ran the stage.
        self.process_name = f"shard-{self.shard}"
        self.server.process_name = self.process_name
        self.server.batcher.process_name = self.process_name
        self.bank = PrototypeBank(
            spec["num_prototypes"], spec["segment_length"],
            name=spec["bank"], create=False,
        )
        # The epoch of the bank currently loaded into the local model.
        self.bank_epoch = spec["epoch"]

    def sync_bank(self, advertised: int) -> None:
        """Fence: load the shared bank if ours is older than advertised.

        Raises :class:`StaleEpochError` when even the shared segment is
        behind the advertised epoch — serving from it would hand out
        forecasts computed against a dictionary the router already
        retired.
        """
        if self.bank_epoch >= advertised:
            return
        epoch, prototypes = self.bank.read()
        if epoch < advertised:
            raise StaleEpochError(
                f"shard {self.shard}: shared bank at epoch {epoch} but router "
                f"advertises {advertised}; refusing to serve stale prototypes"
            )
        # set_prototypes bumps the model's prototype_version, so every
        # cached forecast from the old bank is invalidated on sight.
        self.model.set_prototypes(prototypes)
        self.bank_epoch = epoch

    # -- command handlers ------------------------------------------------
    def handle(self, command: str, payload):
        if command == "observe":
            entity_id, row = payload
            return self.server.observe(entity_id, row)
        if command == "observe_many":
            entity_id, block = payload
            return self.server.observe_many(entity_id, block)
        if command == "forecast_many":
            entity_ids, advertised, contexts_wire = payload
            arrived = time.time()
            self.sync_bank(advertised)
            if contexts_wire is None:
                return self.server.forecast_many(entity_ids)
            from repro.telemetry.context import RequestContext

            contexts = {
                entity: RequestContext.from_wire(data)
                for entity, data in contexts_wire.items()
            }
            spans: list = []
            # Queue wait: router dispatch stamp -> this handler (pipe
            # transfer + unpickling + time queued behind other commands).
            dispatch = min(
                (context.dispatch_ts for context in contexts.values()), default=0.0
            )
            if dispatch:
                record_stage(
                    spans, "queue_wait", arrived - dispatch,
                    started=dispatch, process=self.process_name,
                )
            responses = self.server.forecast_many(
                entity_ids, contexts=contexts, trace=spans
            )
            return responses, [span.to_wire() for span in spans]
        if command == "metrics":
            return None if self.registry is None else registry_snapshot(self.registry)
        if command == "replay":
            streams, order, forecast_every, warmup, advertised = payload
            self.sync_bank(advertised)
            return _local_replay(self.server, streams, order, forecast_every, warmup)
        if command == "stats":
            stats = self.server.stats()
            stats["bank_epoch"] = self.bank_epoch
            stats["shard"] = self.shard
            return stats
        if command == "ring_state":
            state = {}
            for entity_id in self.server.store.entities():
                session = self.server.store.session(entity_id)
                with session.lock:
                    ring = session.ring
                    state[entity_id] = {
                        "storage": ring.storage.copy(),
                        "head": ring.head,
                        "filled": ring.filled,
                        "version": ring.version,
                    }
            return state
        if command == "journal":
            journals = {}
            for entity_id in self.server.store.entities():
                session = self.server.store.session(entity_id)
                with session.lock:
                    if session.journal is None:
                        raise FleetError("journals require record_events=True")
                    journals[entity_id] = list(session.journal)
            return journals
        if command == "ping":
            return "pong"
        raise FleetError(f"unknown fleet command {command!r}")


def _worker_main(conn, spec: dict) -> None:
    """Entry point of one shard process (spawn-safe, module-level)."""
    worker = _ShardWorker(spec)
    try:
        while True:
            try:
                seq, command, payload = conn.recv()
            except (EOFError, OSError):
                break  # router died; exit quietly
            if command == "shutdown":
                conn.send((seq, True, None))
                break
            try:
                result = worker.handle(command, payload)
                conn.send((seq, True, result))
            except Exception as error:  # noqa: BLE001 — marshal to router
                conn.send(
                    (seq, False, (type(error).__name__, str(error)))
                )
    finally:
        worker.bank.close()
        conn.close()


# ----------------------------------------------------------------------
# Router side
# ----------------------------------------------------------------------
class _PendingCall:
    __slots__ = ("event", "ok", "payload")

    def __init__(self):
        self.event = threading.Event()
        self.ok = False
        self.payload = None

    def resolve(self, ok: bool, payload) -> None:
        self.ok = ok
        self.payload = payload
        self.event.set()


class _WorkerHandle:
    """Router-side endpoint of one worker: RPC plumbing + liveness."""

    def __init__(self, shard: int, process, conn, on_death):
        self.shard = shard
        self.process = process
        self.conn = conn
        self._on_death = on_death
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _PendingCall] = {}
        self._seq = itertools.count()
        self.alive = True
        self.closing = False
        self.inflight = 0
        self._receiver = threading.Thread(
            target=self._receive_loop, name=f"fleet-recv-{shard}", daemon=True
        )
        self._receiver.start()

    def _receive_loop(self) -> None:
        while True:
            try:
                seq, ok, payload = self.conn.recv()
            except (EOFError, OSError):
                break
            with self._pending_lock:
                pending = self._pending.pop(seq, None)
            if pending is not None:
                pending.resolve(ok, payload)
        self.alive = False
        with self._pending_lock:
            stranded = list(self._pending.values())
            self._pending.clear()
        for pending in stranded:
            pending.resolve(False, ("WorkerCrashedError", f"shard {self.shard} died"))
        if not self.closing:
            self._on_death(self.shard)

    def call_async(self, command: str, payload) -> _PendingCall:
        pending = _PendingCall()
        if not self.alive:
            pending.resolve(False, ("WorkerCrashedError", f"shard {self.shard} is dead"))
            return pending
        with self._send_lock:
            seq = next(self._seq)
            with self._pending_lock:
                self._pending[seq] = pending
            try:
                self.conn.send((seq, command, payload))
            except (OSError, BrokenPipeError):
                with self._pending_lock:
                    self._pending.pop(seq, None)
                pending.resolve(
                    False, ("WorkerCrashedError", f"shard {self.shard} is dead")
                )
        return pending

    def wait(self, pending: _PendingCall, timeout: float):
        if not pending.event.wait(timeout):
            raise TimeoutError(
                f"shard {self.shard} did not answer within {timeout}s"
            )
        if pending.ok:
            return pending.payload
        name, message = pending.payload
        if name == "StaleEpochError":
            raise StaleEpochError(message)
        if name == "WorkerCrashedError":
            raise WorkerCrashedError(message)
        raise FleetError(f"shard {self.shard} {name}: {message}")

    def call(self, command: str, payload, timeout: float):
        return self.wait(self.call_async(command, payload), timeout)


@contextmanager
def _worker_env(enabled: bool):
    """Temporarily pin BLAS thread pools for processes spawned inside."""
    if not enabled:
        yield
        return
    saved = {key: os.environ.get(key) for key in _WORKER_ENV}
    os.environ.update(_WORKER_ENV)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


class ShardRouter:
    """Front door of the fleet: routing, fencing, admission, health.

    Owns the spawn-context worker processes, the shared-memory
    :class:`PrototypeBank`, and a per-worker RPC channel (duplex pipe +
    receiver thread), so it is safe to call from multiple client
    threads concurrently.  Use as a context manager::

        with ShardRouter(model, FleetConfig(shards=4)) as router:
            router.observe("tenant-1", row)
            response = router.forecast("tenant-1")
    """

    def __init__(
        self,
        model: FOCUSForecaster,
        config: FleetConfig | None = None,
        telemetry=None,
        run_logger=None,
    ):
        self.config = config or FleetConfig()
        self.model = model
        self._telemetry = telemetry
        self._run_logger = run_logger
        self.ring = HashRing(self.config.shards, self.config.vnodes)
        self._workers: dict[int, _WorkerHandle] = {}
        self._alive: set[int] = set()
        self._alive_lock = threading.Lock()
        self._epoch_lock = threading.Lock()
        self._epoch = 0
        self.bank: PrototypeBank | None = None
        self._last_row: dict[str, np.ndarray] = {}
        self._last_row_lock = threading.Lock()
        self._started = False
        self._closed = False
        self._maintenance = None
        self.rejected_requests = 0
        self._instruments = None
        if telemetry is not None:
            self._instruments = {
                "alive": telemetry.gauge(
                    "serve_fleet_alive_workers", help="live shard workers"
                ),
                "rejected": telemetry.counter(
                    "serve_fleet_rejected_total",
                    help="requests shed by fleet-level admission control",
                ),
                "epoch": telemetry.gauge(
                    "serve_fleet_prototype_epoch", help="advertised prototype epoch"
                ),
                "health": telemetry.gauge(
                    "serve_health_state", help="0=HEALTHY 1=DEGRADED 2=FAILED"
                ),
            }
        # Observability plane: fleet-level health (worker deaths, SLO
        # budget burn), merged per-shard metrics, cross-process traces.
        self.health = HealthMonitor(
            on_transition=self._on_health_transition
            if (telemetry is not None or run_logger is not None)
            else None,
        )
        self.aggregator = FleetAggregator()
        self.trace_buffer = (
            TraceBuffer(self.config.trace_keep) if self.config.trace else None
        )
        self.slo = (
            SloMonitor(
                self.config.slo,
                telemetry=telemetry,
                run_logger=run_logger,
                health=self.health,
            )
            if self.config.slo is not None
            else None
        )
        self._metrics_stop = threading.Event()
        self._metrics_thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ShardRouter":
        if self._started:
            return self
        prototypes = self.model.prototype_values()
        if prototypes is None:
            raise FleetError(
                "the fleet requires a prototype model (attn/linear variants "
                "have no dictionary to publish)"
            )
        cfg = self.model.config
        self.bank = PrototypeBank(cfg.num_prototypes, cfg.segment_length)
        self._epoch = 1
        self.bank.publish(prototypes, self._epoch)
        snapshot = self.model.snapshot()
        serving = {
            "max_batch": self.config.max_batch,
            "engine": self.config.engine,
            "cache_capacity": self.config.cache_capacity,
            "use_cache": self.config.use_cache,
            "nan_policy": self.config.nan_policy,
            "fallback": self.config.fallback,
            "seasonal_period": self.config.seasonal_period,
            "record_events": self.config.record_events,
        }
        worker_telemetry = self._telemetry is not None
        ctx = get_context("spawn")
        with _worker_env(self.config.limit_worker_blas):
            for shard in range(self.config.shards):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                spec = {
                    "shard": shard,
                    "snapshot": snapshot,
                    "bank": self.bank.name,
                    "num_prototypes": cfg.num_prototypes,
                    "segment_length": cfg.segment_length,
                    "epoch": self._epoch,
                    "serving": serving,
                    "telemetry": worker_telemetry,
                }
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, spec),
                    name=f"focus-shard-{shard}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._workers[shard] = _WorkerHandle(
                    shard, process, parent_conn, self._on_worker_death
                )
        self._alive = set(range(self.config.shards))
        self._started = True
        # One fenced ping per worker: proves the replica built and the
        # bank attached before any traffic is admitted.
        for shard in range(self.config.shards):
            self._workers[shard].call("ping", None, self.config.call_timeout)
        if self._instruments is not None:
            self._instruments["alive"].set(len(self._alive))
            self._instruments["epoch"].set(self._epoch)
        if self._run_logger is not None:
            self._run_logger.event("fleet_start", shards=self.config.shards)
        if self.config.metrics_every_s > 0 and worker_telemetry:
            self._metrics_thread = threading.Thread(
                target=self._metrics_loop, name="fleet-metrics", daemon=True
            )
            self._metrics_thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._metrics_stop.set()
        if self._metrics_thread is not None:
            self._metrics_thread.join(timeout=10.0)
            self._metrics_thread = None
        for handle in self._workers.values():
            handle.closing = True
            if handle.alive:
                try:
                    handle.call("shutdown", None, timeout=10.0)
                except (FleetError, TimeoutError):
                    pass
        for handle in self._workers.values():
            handle.process.join(timeout=10.0)
            if handle.process.is_alive():  # pragma: no cover — stuck worker
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            handle.conn.close()
        if self._run_logger is not None and self._started:
            self._run_logger.event("fleet_stop", shards=self.config.shards)
        if self.bank is not None:
            self.bank.close()
            self.bank.unlink()
            self.bank = None

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- routing and health ----------------------------------------------
    def _on_worker_death(self, shard: int) -> None:
        with self._alive_lock:
            self._alive.discard(shard)
            alive = len(self._alive)
        if self._instruments is not None:
            self._instruments["alive"].set(alive)
        if self._run_logger is not None:
            self._run_logger.event("fleet_worker_dead", shard=shard)
        self.health.record_failure(f"shard {shard} worker died")

    def _on_health_transition(self, src: str, dst: str, reason: str, tick: int) -> None:
        if self._telemetry is not None:
            self._telemetry.counter(
                "serve_health_transitions_total", labels={"to": dst},
                help="serving-health state changes",
            ).inc()
            self._instruments["health"].set(
                ForecastServer._HEALTH_LEVELS[dst]
            )
        if self._run_logger is not None:
            self._run_logger.event(
                "health_transition",
                **{"from": src, "to": dst, "reason": reason, "tick": tick},
            )

    def alive_shards(self) -> set[int]:
        with self._alive_lock:
            return set(self._alive)

    def shard_for(self, entity_id: str) -> int:
        """The live shard owning ``entity_id`` (rehashes around deaths)."""
        return self.ring.shard_for(entity_id, self.alive_shards())

    def _handle_for(self, entity_id: str) -> _WorkerHandle:
        self._require_started()
        return self._workers[self.shard_for(entity_id)]

    def _require_started(self) -> None:
        if not self._started or self._closed:
            raise FleetError("router is not running (use `with ShardRouter(...)`)")

    def ping(self) -> dict[int, bool]:
        """Probe every worker; dead or unresponsive shards map to False."""
        self._require_started()
        results = {}
        for shard, handle in self._workers.items():
            try:
                results[shard] = handle.call("ping", None, timeout=10.0) == "pong"
            except (FleetError, TimeoutError):
                results[shard] = False
        return results

    def kill_worker(self, shard: int) -> None:
        """Chaos hook: hard-kill one worker process (SIGKILL)."""
        self._require_started()
        self._workers[shard].process.kill()
        self._workers[shard].process.join(timeout=10.0)

    # -- prototype lifecycle ----------------------------------------------
    @property
    def prototype_epoch(self) -> int:
        with self._epoch_lock:
            return self._epoch

    def set_prototypes(self, prototypes: np.ndarray) -> int:
        """Hot-swap the prototype bank fleet-wide; returns the new epoch.

        Publishes the new bank into shared memory and bumps the
        advertised epoch atomically (seqlock); workers lazily adopt it
        on their next fenced request, and their versioned caches drop
        every forecast computed under the old bank.  The router's local
        model is updated too, so a later :meth:`start` of another fleet
        (or single-process serving against the same model) agrees.
        """
        self._require_started()
        with self._epoch_lock:
            self.model.set_prototypes(prototypes)
            self._epoch += 1
            self.bank.publish(self.model.prototype_values(), self._epoch)
            epoch = self._epoch
        if self._instruments is not None:
            self._instruments["epoch"].set(epoch)
        if self._run_logger is not None:
            self._run_logger.event("fleet_swap", epoch=epoch)
        return epoch

    def attach_maintenance(self, worker) -> None:
        """Wire a :class:`~repro.maintenance.MaintenanceWorker` in.

        The router taps every observation it routes into the worker's
        history (router-side, so drift is watched fleet-wide over the
        *router's* model replica), and the worker's hot-swap callable is
        bound to :meth:`set_prototypes` — an accepted candidate is
        published to shared memory under a new fenced epoch and every
        shard adopts it on its next request.  The caller owns the
        worker's lifecycle (``start``/``close``).
        """
        worker.bind(self.set_prototypes)
        self._maintenance = worker

    # -- traffic -----------------------------------------------------------
    def observe(self, entity_id: str, observation: np.ndarray):
        """Route one ``(N,)`` observation to its owning shard."""
        observation = np.asarray(observation, dtype=np.float64)
        result = self._handle_for(entity_id).call(
            "observe", (entity_id, observation), self.config.call_timeout
        )
        with self._last_row_lock:
            self._last_row[entity_id] = observation.copy()
        if self._maintenance is not None:
            self._maintenance.record(entity_id, observation)
        return result

    def observe_many(self, entity_id: str, block: np.ndarray):
        """Route a ``(T, N)`` block to its owning shard."""
        block = np.asarray(block, dtype=np.float64)
        result = self._handle_for(entity_id).call(
            "observe_many", (entity_id, block), self.config.call_timeout
        )
        if len(block):
            with self._last_row_lock:
                self._last_row[entity_id] = block[-1].copy()
        if self._maintenance is not None:
            for row in block:
                self._maintenance.record(entity_id, row)
        return result

    def _fleet_reject(
        self, entity_id: str, last_row: np.ndarray, context=None
    ) -> ForecastResponse:
        self.rejected_requests += 1
        if self._instruments is not None:
            self._instruments["rejected"].inc()
        if self._run_logger is not None:
            extra = {}
            if context is not None:
                extra = {"request_id": context.request_id, "trace_id": context.trace_id}
            self._run_logger.event(
                "serve_reject", entity=entity_id,
                queue_depth=self.config.max_inflight, **extra,
            )
        if self.slo is not None:
            self.slo.record(
                max(0.0, time.time() - context.origin_ts) * 1e3
                if context is not None
                else 0.0,
                False,
            )
        horizon = self.model.config.horizon
        return ForecastResponse(
            entity_id,
            np.repeat(last_row[None, :], horizon, axis=0),
            "rejected:fleet",
            -1,  # ring version unknown at the router
            request_id=context.request_id if context is not None else "",
        )

    def _dispatch_group(self, shard: int, group: list[str], contexts, epoch: int):
        """Scatter half of one shard's forecast RPC.

        With tracing on, stamps every context's ``dispatch_ts`` and
        ships the contexts inside the envelope; returns the pending
        call plus the dispatch stamp the gather half needs.
        """
        if contexts is None:
            pending = self._workers[shard].call_async(
                "forecast_many", (group, epoch, None)
            )
            return pending, None
        dispatch = time.time()
        wire = {}
        for entity_id in group:
            context = contexts[entity_id]
            context.dispatch_ts = dispatch
            wire[entity_id] = context.to_wire()
        pending = self._workers[shard].call_async(
            "forecast_many", (group, epoch, wire)
        )
        return pending, dispatch

    def _gather_group(
        self, shard: int, pending, group: list[str], contexts, timeout: float
    ) -> list[ForecastResponse]:
        """Gather half: unpack responses, merge worker spans into one
        cross-process trace per request, and close out observability."""
        result = self._workers[shard].wait(pending, timeout)
        if contexts is None:
            return result
        responses, span_dicts = result
        received = time.perf_counter()
        gather_wall = time.time()
        worker_spans = [StageSpan.from_wire(data) for data in span_dicts]
        for entity_id, response in zip(group, responses):
            context = contexts[entity_id]
            spans: list[StageSpan] = []
            record_stage(
                spans, "router_dispatch",
                context.dispatch_ts - context.origin_ts,
                started=context.origin_ts, process="router",
            )
            spans.extend(worker_spans)
            record_stage(
                spans, "gather", time.perf_counter() - received,
                started=gather_wall, process="router",
            )
            trace = RequestTrace(
                context, spans, max(0.0, time.time() - context.origin_ts)
            )
            if self.trace_buffer is not None:
                self.trace_buffer.record(trace)
            if self._run_logger is not None:
                self._run_logger.event("serve_trace", **trace.event_payload())
            if self.slo is not None:
                self.slo.record(
                    trace.total_seconds * 1e3, response_ok(response.source)
                )
        return responses

    def forecast(self, entity_id: str, timeout: float | None = None) -> ForecastResponse:
        """One forecast via the owning shard (micro-batched worker-side).

        Fleet-level admission control: when the owning shard already has
        ``max_inflight`` outstanding requests, the request is shed and
        answered immediately from the router's last-row cache
        (persistence fallback, ``source="rejected:fleet"``) — the worker
        never sees it.  The first request for an entity the router has
        never observed is always forwarded.
        """
        handle = self._handle_for(entity_id)
        timeout = self.config.call_timeout if timeout is None else timeout
        contexts = (
            {entity_id: mint_context(entity_id)} if self.config.trace else None
        )
        with self._last_row_lock:
            last_row = self._last_row.get(entity_id)
        if handle.inflight >= self.config.max_inflight and last_row is not None:
            return self._fleet_reject(
                entity_id, last_row,
                contexts[entity_id] if contexts is not None else None,
            )
        started = time.perf_counter()
        handle.inflight += 1
        try:
            pending, _dispatch = self._dispatch_group(
                handle.shard, [entity_id], contexts, self.prototype_epoch
            )
            responses = self._gather_group(
                handle.shard, pending, [entity_id], contexts, timeout
            )
        finally:
            handle.inflight -= 1
        if self.slo is not None and contexts is None:
            self.slo.record(
                (time.perf_counter() - started) * 1e3,
                response_ok(responses[0].source),
            )
        return responses[0]

    def forecast_many(self, entity_ids: list[str]) -> list[ForecastResponse]:
        """Scatter-gather: one batched forward per owning shard.

        With ``config.trace`` set, every request carries a
        :class:`~repro.telemetry.RequestContext` through the RPC
        envelope; worker-side spans merge with the router's dispatch and
        gather spans into one cross-process trace per request.
        """
        self._require_started()
        alive = self.alive_shards()
        groups = self.ring.partition(entity_ids, alive)
        epoch = self.prototype_epoch
        contexts = (
            {entity_id: mint_context(entity_id) for entity_id in entity_ids}
            if self.config.trace
            else None
        )
        started = time.perf_counter()
        calls = {
            shard: self._dispatch_group(shard, group, contexts, epoch)[0]
            for shard, group in groups.items()
        }
        by_entity: dict[str, ForecastResponse] = {}
        for shard, pending in calls.items():
            responses = self._gather_group(
                shard, pending, groups[shard], contexts, self.config.call_timeout
            )
            for response in responses:
                by_entity[response.entity] = response
        if self.slo is not None and contexts is None:
            elapsed_ms = (time.perf_counter() - started) * 1e3
            for entity_id in entity_ids:
                self.slo.record(
                    elapsed_ms, response_ok(by_entity[entity_id].source)
                )
        return [by_entity[entity_id] for entity_id in entity_ids]

    # -- metrics aggregation -----------------------------------------------
    def collect_metrics(self, timeout: float = 10.0) -> FleetAggregator:
        """Pull a cumulative registry snapshot from every live worker.

        Snapshots ingest into the router's :class:`FleetAggregator`
        (idempotently — they are cumulative, not deltas); dead or
        unresponsive shards keep their last snapshot, so a crashed
        worker's final counters stay in the merged view.
        """
        self._require_started()
        calls = {
            shard: handle.call_async("metrics", None)
            for shard, handle in self._workers.items()
            if handle.alive
        }
        for shard, pending in calls.items():
            try:
                snapshot = self._workers[shard].wait(pending, timeout)
            except (FleetError, TimeoutError):  # pragma: no cover — death race
                continue
            if snapshot is not None:
                self.aggregator.ingest(shard, snapshot)
        return self.aggregator

    def merged_registry(self) -> "MetricsRegistry":
        """One registry covering the whole fleet: fresh worker snapshots
        under ``shard`` labels plus the router's own instruments
        (fleet gauges, SLO state, ``maintenance_state``) unlabelled —
        the registry ``write_prometheus`` turns into the single
        ``metrics.prom`` of a fleet run."""
        self.collect_metrics()
        return self.aggregator.merged(base=self._telemetry)

    def _metrics_loop(self) -> None:
        while not self._metrics_stop.wait(self.config.metrics_every_s):
            try:
                self.collect_metrics()
            except (FleetError, TimeoutError):  # pragma: no cover — shutdown race
                continue

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        """Fleet-wide and per-shard serving counters.

        Worker counters are fetched over RPC and republished to the
        router's telemetry registry with per-shard ``shard`` labels
        (``serve_fleet_forecasts{shard="2"}`` etc.), so one Prometheus
        scrape of the router sees the whole fleet.
        """
        self._require_started()
        per_shard: dict[int, dict] = {}
        calls = {
            shard: handle.call_async("stats", None)
            for shard, handle in self._workers.items()
            if handle.alive
        }
        for shard, pending in calls.items():
            try:
                per_shard[shard] = self._workers[shard].wait(
                    pending, self.config.call_timeout
                )
            except (FleetError, TimeoutError):  # pragma: no cover — race with death
                continue
        totals = {
            "entities": 0, "observations": 0, "forecasts": 0,
            "model_forecasts": 0, "cache_hits": 0, "fallback_forecasts": 0,
            "imputed_values": 0, "rejected_observations": 0,
            "rejected_requests": self.rejected_requests,
        }
        for shard, stats in per_shard.items():
            for key in totals:
                if key != "rejected_requests":
                    totals[key] += stats.get(key, 0)
            totals["rejected_requests"] += stats.get("rejected_requests", 0)
            if self._telemetry is not None:
                labels = {"shard": str(shard)}
                self._telemetry.gauge(
                    "serve_fleet_forecasts", labels=labels,
                    help="forecasts served, per shard",
                ).set(stats.get("forecasts", 0))
                self._telemetry.gauge(
                    "serve_fleet_entities", labels=labels,
                    help="entities owned, per shard",
                ).set(stats.get("entities", 0))
        totals["alive_workers"] = len(self.alive_shards())
        totals["prototype_epoch"] = self.prototype_epoch
        totals["health"] = self.health.state.value
        if self.slo is not None:
            totals["slo"] = self.slo.snapshot()
        totals["shards"] = per_shard
        return totals


def replay_fleet(
    router: ShardRouter,
    streams: dict[str, np.ndarray],
    forecast_every: int = 8,
    warmup: int | None = None,
    with_latencies: bool = False,
):
    """Scatter-gather replay of per-entity streams across the fleet.

    Partitions ``streams`` by the router's hash ring, ships each shard
    its partition in one message, replays every partition locally inside
    its worker (interleaved in time order, micro-batched per step —
    identical semantics to :func:`~repro.serving.replay_streams`), and
    merges the responses back into global issue order.  Per-row float64
    results are bit-identical to a single-process
    ``replay_streams(server, streams)`` of the same traffic, which
    ``tests/serving/test_fleet.py`` proves.

    With ``with_latencies=True`` returns ``(responses, latencies_ms)``
    where each latency is the wall clock of the worker batch that
    answered the matching response, divided by the batch's request
    count (the per-request cost the fleet benchmark aggregates).
    """
    if forecast_every < 1:
        raise ValueError("forecast_every must be at least 1")
    router._require_started()
    if not streams:
        return ([], []) if with_latencies else []
    order = {entity_id: index for index, entity_id in enumerate(streams)}
    groups = router.ring.partition(streams, router.alive_shards())
    epoch = router.prototype_epoch
    calls = {}
    for shard, entity_ids in groups.items():
        subset = {entity_id: streams[entity_id] for entity_id in entity_ids}
        suborder = {entity_id: order[entity_id] for entity_id in entity_ids}
        calls[shard] = router._workers[shard].call_async(
            "replay", (subset, suborder, forecast_every, warmup, epoch)
        )
    merged: list[tuple[int, int, ForecastResponse, float]] = []
    for shard, pending in calls.items():
        tagged, latencies = router._workers[shard].wait(
            pending, router.config.call_timeout
        )
        for (step, index, response), latency in zip(tagged, latencies):
            merged.append((step, index, response, latency))
    merged.sort(key=lambda item: (item[0], item[1]))
    for entity_id, stream in streams.items():
        if len(stream):
            with router._last_row_lock:
                router._last_row[entity_id] = np.asarray(
                    stream[-1], dtype=np.float64
                ).copy()
    responses = [item[2] for item in merged]
    if with_latencies:
        return responses, [item[3] for item in merged]
    return responses


def replay_routed(
    router: ShardRouter,
    streams: dict[str, np.ndarray],
    forecast_every: int = 8,
    warmup: int | None = None,
) -> list[ForecastResponse]:
    """Row-by-row replay through the router's public traffic methods.

    Unlike :func:`replay_fleet` (which ships whole streams into the
    workers for throughput), every row goes through
    :meth:`ShardRouter.observe` and every due forecast through
    :meth:`ShardRouter.forecast_many` — the shape of real online
    traffic.  This is the replay the maintenance path needs: the
    router-side observation tap (:meth:`ShardRouter.attach_maintenance`)
    only sees traffic that crosses the router.  Returns responses in
    issue order.
    """
    if forecast_every < 1:
        raise ValueError("forecast_every must be at least 1")
    router._require_started()
    if not streams:
        return []
    lookback = router.model.config.lookback
    warmup = lookback if warmup is None else warmup
    length = min(len(stream) for stream in streams.values())
    responses: list[ForecastResponse] = []
    for step in range(length):
        due: list[str] = []
        for entity_id, stream in streams.items():
            router.observe(entity_id, stream[step])
            if step + 1 >= warmup and (step + 1) % forecast_every == 0:
                due.append(entity_id)
        if due:
            responses.extend(router.forecast_many(due))
    return responses
