"""Concurrent multi-entity serving in front of a trained FOCUS model.

Layered bottom-up:

- :class:`EntitySession` / :class:`EntitySessionStore` — per-entity ring
  buffers, NaN-policy guards, locks, and optional replayable journals;
- :class:`ForecastCache` — versioned LRU keyed on
  ``(entity, ring version, horizon)`` and invalidated by prototype EMA
  updates;
- :class:`MicroBatcher` — coalesces requests into one batched forward
  (bit-identical per sample to sequential streaming in float64);
- :class:`ForecastServer` / :class:`ServingConfig` — bounded queue,
  background batching worker, admission control, health + telemetry;
- :class:`ShardRouter` / :class:`FleetConfig` — multi-process scale-out:
  consistent-hash routing, a shared-memory prototype bank with epoch
  fencing, scatter-gather replay, and crashed-worker rehash.

See ``docs/api.md`` (architecture) and ``examples/serving_replay.py``.
"""

from repro.serving.batcher import BATCH_SIZE_BUCKETS, ForecastResponse, MicroBatcher
from repro.serving.cache import ForecastCache
from repro.serving.fleet import (
    FleetConfig,
    FleetError,
    HashRing,
    PrototypeBank,
    ShardRouter,
    StaleEpochError,
    WorkerCrashedError,
    replay_fleet,
    replay_routed,
)
from repro.serving.server import ForecastServer, ServingConfig, replay_streams
from repro.serving.session import EntitySession, EntitySessionStore, SessionStats

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "EntitySession",
    "EntitySessionStore",
    "FleetConfig",
    "FleetError",
    "ForecastCache",
    "ForecastResponse",
    "ForecastServer",
    "HashRing",
    "MicroBatcher",
    "PrototypeBank",
    "ServingConfig",
    "SessionStats",
    "ShardRouter",
    "StaleEpochError",
    "WorkerCrashedError",
    "replay_fleet",
    "replay_routed",
    "replay_streams",
]
