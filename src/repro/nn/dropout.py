"""Inverted dropout."""

from __future__ import annotations

from repro.autograd import Tensor
from repro.nn import init
from repro.nn.module import Module


class Dropout(Module):
    """Randomly zeroes activations with probability ``p`` during training.

    Uses inverted scaling (kept activations divided by ``1 - p``) so that
    eval mode is the identity.
    """

    def __init__(self, p: float = 0.1):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (init.get_rng().random(x.shape) < keep) / keep
        return x * Tensor(mask)

    def _extra_repr(self) -> str:
        return f"(p={self.p})"
