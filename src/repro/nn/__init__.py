"""Neural-network layers built on :mod:`repro.autograd`.

Mirrors the subset of ``torch.nn`` the FOCUS paper and its baselines need:
module/parameter registration, linear and convolutional layers,
normalization (LayerNorm / BatchNorm1d / RevIN), dropout, embeddings,
multi-head attention, and containers, plus weight initialization and
npz-based state-dict serialization.
"""

from repro.nn.module import Module, Parameter
from repro.nn.containers import ModuleList, Sequential
from repro.nn.linear import Linear
from repro.nn.norm import BatchNorm1d, LayerNorm, RevIN
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.conv import Conv1d
from repro.nn.attention import MultiHeadAttention, scaled_dot_product_attention
from repro.nn.activations import GELU, Identity, ReLU, Sigmoid, Tanh
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Sequential",
    "Linear",
    "LayerNorm",
    "BatchNorm1d",
    "RevIN",
    "Dropout",
    "Embedding",
    "Conv1d",
    "MultiHeadAttention",
    "scaled_dot_product_attention",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "init",
]
