"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.nn.module import Module


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for i, module in enumerate(modules):
            self.add_module(str(i), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]


class ModuleList(Module):
    """List-like container that registers its elements as submodules."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._size = 0
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(self._size), module)
        self._size += 1
        return self

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        if index < 0:
            index += self._size
        return self._modules[str(index)]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")
