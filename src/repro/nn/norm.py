"""Normalization layers: LayerNorm, BatchNorm1d, and RevIN.

RevIN (reversible instance normalization, Kim et al. 2021) is the
per-window normalization used throughout modern long-horizon forecasters
(PatchTST, DLinear variants, FOCUS) to counter distribution shift: each
lookback window is standardized on entry and the statistics are restored
on the forecast before computing the loss.
"""

from __future__ import annotations

from repro.autograd import Tensor, mean, sqrt, var
from repro.nn import init
from repro.nn.module import Module, Parameter


class LayerNorm(Module):
    """Normalize over the trailing ``normalized_shape`` axes with affine."""

    def __init__(self, normalized_shape: int | tuple[int, ...], eps: float = 1e-5):
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(normalized_shape)
        self.eps = eps
        self.weight = Parameter(init.ones(self.normalized_shape))
        self.bias = Parameter(init.zeros(self.normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        axes = tuple(range(x.ndim - len(self.normalized_shape), x.ndim))
        mu = mean(x, axis=axes, keepdims=True)
        sigma2 = var(x, axis=axes, keepdims=True)
        normalized = (x - mu) / sqrt(sigma2 + self.eps)
        return normalized * self.weight + self.bias

    def _extra_repr(self) -> str:
        return f"({self.normalized_shape})"


class BatchNorm1d(Module):
    """Batch normalization over axis 0 (and axis 2 when 3-D input).

    Input is ``(B, C)`` or ``(B, C, L)``; running statistics are tracked
    for eval mode like torch's implementation.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones(num_features))
        self.bias = Parameter(init.zeros(num_features))
        self.register_buffer("running_mean", init.zeros(num_features))
        self.register_buffer("running_var", init.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim not in (2, 3):
            raise ValueError("BatchNorm1d expects (B, C) or (B, C, L) input")
        axes = (0,) if x.ndim == 2 else (0, 2)
        shape = (1, self.num_features) if x.ndim == 2 else (1, self.num_features, 1)
        if self.training:
            mu = mean(x, axis=axes, keepdims=True)
            sigma2 = var(x, axis=axes, keepdims=True)
            # Update running stats outside the graph.
            count = x.size // self.num_features
            unbiased = sigma2.data * count / max(count - 1, 1)
            self.running_mean *= 1.0 - self.momentum
            self.running_mean += self.momentum * mu.data.reshape(-1)
            self.running_var *= 1.0 - self.momentum
            self.running_var += self.momentum * unbiased.reshape(-1)
        else:
            mu = Tensor(self.running_mean.reshape(shape))
            sigma2 = Tensor(self.running_var.reshape(shape))
        normalized = (x - mu) / sqrt(sigma2 + self.eps)
        weight = self.weight.reshape(shape)
        bias = self.bias.reshape(shape)
        return normalized * weight + bias

    def _extra_repr(self) -> str:
        return f"({self.num_features})"


class RevIN(Module):
    """Reversible instance normalization for forecasting windows.

    ``normalize`` standardizes each series of a window ``(B, L, N)`` over
    its time axis and remembers the statistics; ``denormalize`` restores
    them on the model output ``(B, L_f, N)``.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, affine: bool = True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(init.ones(num_features))
            self.bias = Parameter(init.zeros(num_features))
        self._last_mean: Tensor | None = None
        self._last_std: Tensor | None = None

    def normalize(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ValueError("RevIN expects (B, L, N) input")
        mu = mean(x, axis=1, keepdims=True)
        sigma = sqrt(var(x, axis=1, keepdims=True) + self.eps)
        self._last_mean, self._last_std = mu, sigma
        out = (x - mu) / sigma
        if self.affine:
            out = out * self.weight + self.bias
        return out

    def denormalize(self, y: Tensor) -> Tensor:
        if self._last_mean is None or self._last_std is None:
            raise RuntimeError("denormalize() called before normalize()")
        if self.affine:
            # eps**2 guards an exactly-zero learned weight without visibly
            # perturbing the reconstruction (reference RevIN does the same).
            y = (y - self.bias) / (self.weight + self.eps**2)
        return y * self._last_std + self._last_mean

    def forward(self, x: Tensor, mode: str = "norm") -> Tensor:
        if mode == "norm":
            return self.normalize(x)
        if mode == "denorm":
            return self.denormalize(x)
        raise ValueError(f"unknown RevIN mode {mode!r}")

    def _extra_repr(self) -> str:
        return f"({self.num_features})"
