"""Activation functions as modules (for use inside Sequential)."""

from __future__ import annotations

from repro.autograd import Tensor, gelu, relu, sigmoid, tanh
from repro.nn.module import Module


class ReLU(Module):
    """Module wrapper around :func:`repro.autograd.relu`."""

    def forward(self, x: Tensor) -> Tensor:
        return relu(x)


class GELU(Module):
    """Module wrapper around :func:`repro.autograd.gelu`."""

    def forward(self, x: Tensor) -> Tensor:
        return gelu(x)


class Tanh(Module):
    """Module wrapper around :func:`repro.autograd.tanh`."""

    def forward(self, x: Tensor) -> Tensor:
        return tanh(x)


class Sigmoid(Module):
    """Module wrapper around :func:`repro.autograd.sigmoid`."""

    def forward(self, x: Tensor) -> Tensor:
        return sigmoid(x)


class Identity(Module):
    """Pass-through module (placeholder in Sequential stacks)."""

    def forward(self, x: Tensor) -> Tensor:
        return x
