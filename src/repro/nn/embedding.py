"""Learned lookup-table embedding."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, gather
from repro.nn import init
from repro.nn.module import Module, Parameter


class Embedding(Module):
    """Map integer indices to learned vectors of size ``embedding_dim``."""

    def __init__(self, num_embeddings: int, embedding_dim: int):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std=1.0))

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return gather(self.weight, indices, axis=0)

    def _extra_repr(self) -> str:
        return f"({self.num_embeddings}, {self.embedding_dim})"
