"""Standard multi-head scaled-dot-product attention.

Used by the ``FOCUS-Attn`` ablation variant and by the Transformer
baselines (PatchTST, Crossformer).  FOCUS's own ProtoAttn lives in
:mod:`repro.core.protoattn`.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, matmul, softmax, swapaxes
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module


def scaled_dot_product_attention(
    query: Tensor, key: Tensor, value: Tensor, mask: np.ndarray | None = None
) -> tuple[Tensor, Tensor]:
    """Attention over the last two axes of ``(..., T, d)`` tensors.

    Returns ``(output, attention_weights)``.  ``mask`` is an additive mask
    broadcastable to the score shape (use ``-inf`` to block positions).
    """
    d_k = query.shape[-1]
    scores = matmul(query, swapaxes(key, -1, -2)) * float(1.0 / np.sqrt(d_k))
    if mask is not None:
        scores = scores + Tensor(mask)
    weights = softmax(scores, axis=-1)
    return matmul(weights, value), weights


class MultiHeadAttention(Module):
    """Multi-head attention with separate Q/K/V projections.

    Input/output shape ``(B, T, d_model)``; ``n_heads`` must divide
    ``d_model``.
    """

    def __init__(self, d_model: int, n_heads: int, dropout: float = 0.0):
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.w_q = Linear(d_model, d_model)
        self.w_k = Linear(d_model, d_model)
        self.w_v = Linear(d_model, d_model)
        self.w_o = Linear(d_model, d_model)
        self.dropout = Dropout(dropout)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq_len, _ = x.shape
        return swapaxes(
            x.reshape(batch, seq_len, self.n_heads, self.d_head), 1, 2
        )  # (B, H, T, d_head)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, _, seq_len, _ = x.shape
        return swapaxes(x, 1, 2).reshape(batch, seq_len, self.d_model)

    def forward(
        self,
        query: Tensor,
        key: Tensor | None = None,
        value: Tensor | None = None,
        mask: np.ndarray | None = None,
    ) -> Tensor:
        key = query if key is None else key
        value = key if value is None else value
        q = self._split_heads(self.w_q(query))
        k = self._split_heads(self.w_k(key))
        v = self._split_heads(self.w_v(value))
        context, _ = scaled_dot_product_attention(q, k, v, mask=mask)
        return self.w_o(self.dropout(self._merge_heads(context)))

    def _extra_repr(self) -> str:
        return f"(d_model={self.d_model}, heads={self.n_heads})"
