"""Module / Parameter base classes with registration and serialization."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autograd import Tensor


class Parameter(Tensor):
    """A Tensor that a Module treats as trainable (requires_grad=True)."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; they are auto-registered and discoverable through
    :meth:`parameters` / :meth:`named_parameters`, serialized through
    :meth:`state_dict`, and switched between train/eval mode through
    :meth:`train` / :meth:`eval`.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        else:
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state saved with the state dict."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield f"{prefix}{name}", buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total count of trainable scalars."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Mode / gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def to_dtype(self, dtype) -> "Module":
        """Cast all parameters and float buffers to ``dtype`` (in place)."""
        dtype = np.dtype(dtype)
        for _, param in self.named_parameters():
            param.data = param.data.astype(dtype, copy=False)
            if param.grad is not None:
                param.grad = param.grad.astype(dtype, copy=False)
        for _, module in self.named_modules():
            for buf_name, buf in list(module._buffers.items()):
                if buf.dtype.kind == "f" and buf.dtype != dtype:
                    cast = buf.astype(dtype)
                    module._buffers[buf_name] = cast
                    object.__setattr__(module, buf_name, cast)
        return self

    # ------------------------------------------------------------------
    # Serialization (flat npz-compatible dict of ndarrays)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[f"{name}__buffer"] = buf.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        consumed = set()
        for name, param in params.items():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data[...] = value
            consumed.add(name)
        # Restore buffers in place (module attributes alias the arrays).
        for full_name, module in self.named_modules():
            prefix = f"{full_name}." if full_name else ""
            for buf_name in list(module._buffers):
                key = f"{prefix}{buf_name}__buffer"
                if key in state:
                    module._buffers[buf_name][...] = state[key]
                    consumed.add(key)
        unexpected = set(state) - consumed
        if unexpected:
            raise KeyError(f"unexpected keys in state dict: {sorted(unexpected)}")

    def save(self, path: str) -> None:
        """Save parameters + buffers as a compressed npz archive."""
        np.savez_compressed(path, **self.state_dict())

    def load(self, path: str) -> None:
        with np.load(path) as archive:
            self.load_state_dict({k: archive[k] for k in archive.files})

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [
            f"  ({name}): {module!r}".replace("\n", "\n  ")
            for name, module in self._modules.items()
        ]
        header = self.__class__.__name__ + self._extra_repr()
        if not child_lines:
            return header
        return header + "(\n" + "\n".join(child_lines) + "\n)"

    def _extra_repr(self) -> str:
        return ""
