"""Weight initialization schemes and the library-wide RNG.

All layers draw their initial weights from a single module-level generator
so that ``init.seed(n)`` makes model construction fully reproducible.

Samples are always drawn in float64 from the same RNG stream and then cast
to the active default dtype (see :func:`repro.autograd.set_default_dtype`),
so a float32 model is initialised with the rounded values of its float64
twin — which is what makes cross-precision equivalence tests meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import get_default_dtype

_GENERATOR = np.random.default_rng(0)


def seed(value: int) -> None:
    """Re-seed the global initialization RNG (reproducible model builds)."""
    global _GENERATOR
    _GENERATOR = np.random.default_rng(value)


def get_rng() -> np.random.Generator:
    """The shared initialization generator (also used by Dropout)."""
    return _GENERATOR


def _cast(sample: np.ndarray, dtype) -> np.ndarray:
    return sample.astype(dtype or get_default_dtype(), copy=False)


def uniform(shape, low: float = -0.1, high: float = 0.1, dtype=None) -> np.ndarray:
    """Uniform initialization in [low, high)."""
    return _cast(_GENERATOR.uniform(low, high, size=shape), dtype)


def normal(shape, std: float = 0.02, dtype=None) -> np.ndarray:
    """Zero-mean Gaussian initialization."""
    return _cast(_GENERATOR.normal(0.0, std, size=shape), dtype)


def _fan_in_out(shape) -> tuple[int, int]:
    shape = tuple(shape)
    if len(shape) < 2:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def xavier_uniform(shape, gain: float = 1.0, dtype=None) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return _cast(_GENERATOR.uniform(-bound, bound, size=shape), dtype)


def kaiming_uniform(shape, a: float = np.sqrt(5.0), dtype=None) -> np.ndarray:
    """He uniform (torch's Linear/Conv default with a=sqrt(5))."""
    fan_in, _ = _fan_in_out(shape)
    gain = np.sqrt(2.0 / (1.0 + a**2))
    bound = gain * np.sqrt(3.0 / fan_in)
    return _cast(_GENERATOR.uniform(-bound, bound, size=shape), dtype)


def zeros(shape, dtype=None) -> np.ndarray:
    """All-zeros initialization."""
    return np.zeros(shape, dtype=dtype or get_default_dtype())


def ones(shape, dtype=None) -> np.ndarray:
    """All-ones initialization."""
    return np.ones(shape, dtype=dtype or get_default_dtype())
