"""1-D convolution with stride / padding / dilation (im2col based).

Implemented as a fused autograd op: the forward builds sliding windows
with numpy stride tricks and contracts them with the kernel via einsum;
the backward scatters gradients back with ``np.add.at`` (col2im).  This is
much faster than composing the convolution out of primitive gather ops.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


def _conv1d_windows(
    x: np.ndarray, kernel_size: int, stride: int, dilation: int
) -> np.ndarray:
    """Return sliding windows ``(B, C, L_out, K)`` of an already-padded input."""
    span = (kernel_size - 1) * dilation + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, span, axis=2)
    return windows[:, :, ::stride, ::dilation]


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int | tuple[int, int] = 0,
    dilation: int = 1,
) -> Tensor:
    """Cross-correlation of ``x (B, C_in, L)`` with ``weight (C_out, C_in, K)``.

    ``padding`` may be an int (symmetric) or an ``(left, right)`` pair,
    which enables causal convolutions (pad only on the left).
    """
    if isinstance(padding, int):
        pad_left = pad_right = padding
    else:
        pad_left, pad_right = padding
    batch, c_in, length = x.shape
    c_out, c_in_w, kernel_size = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input {c_in} vs weight {c_in_w}")
    span = (kernel_size - 1) * dilation + 1
    padded_len = length + pad_left + pad_right
    if padded_len < span:
        raise ValueError("input (with padding) shorter than kernel span")

    x_padded = np.pad(x.data, ((0, 0), (0, 0), (pad_left, pad_right)))
    windows = _conv1d_windows(x_padded, kernel_size, stride, dilation)
    out_data = np.einsum("bclk,ock->bol", windows, weight.data, optimize=True)
    if bias is not None:
        out_data = out_data + bias.data[None, :, None]
    l_out = out_data.shape[2]

    def grad_x(g: np.ndarray) -> np.ndarray:
        grad_padded = np.zeros_like(x_padded)
        # d/d windows = einsum('bol,ock->bclk', g, W); scatter back per tap.
        # For a fixed tap the target positions form a non-overlapping
        # strided slice, so direct += is safe (and much faster than add.at).
        grad_windows = np.einsum("bol,ock->bclk", g, weight.data, optimize=True)
        for tap in range(kernel_size):
            offset = tap * dilation
            stop = offset + stride * l_out
            grad_padded[:, :, offset:stop:stride] += grad_windows[:, :, :, tap]
        return grad_padded[:, :, pad_left : pad_left + length]

    def grad_w(g: np.ndarray) -> np.ndarray:
        return np.einsum("bol,bclk->ock", g, windows, optimize=True)

    parents = [(x, grad_x), (weight, grad_w)]
    if bias is not None:
        parents.append((bias, lambda g: g.sum(axis=(0, 2))))
    return Tensor._make(out_data, parents, "conv1d")


class Conv1d(Module):
    """1-D convolution layer over ``(B, C_in, L)`` inputs.

    ``causal=True`` left-pads by ``(K-1)*dilation`` so the output at time t
    only depends on inputs at times <= t (WaveNet-style).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        dilation: int = 1,
        bias: bool = True,
        causal: bool = False,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.dilation = dilation
        self.causal = causal
        if causal:
            self.padding: int | tuple[int, int] = ((kernel_size - 1) * dilation, 0)
        else:
            self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size))
        )
        if bias:
            bound = 1.0 / np.sqrt(in_channels * kernel_size)
            self.bias = Parameter(init.uniform((out_channels,), -bound, bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return conv1d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            dilation=self.dilation,
        )

    def _extra_repr(self) -> str:
        return (
            f"(in={self.in_channels}, out={self.out_channels}, "
            f"k={self.kernel_size}, d={self.dilation}, causal={self.causal})"
        )
