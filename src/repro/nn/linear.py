"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, matmul
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W^T + b`` applied to the last axis.

    Accepts inputs of any leading shape ``(..., in_features)``.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features)))
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(init.uniform((out_features,), -bound, bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = matmul(x, self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def _extra_repr(self) -> str:
        return f"(in={self.in_features}, out={self.out_features})"
