"""Rolling-origin backtesting — the deployment-style evaluation loop.

A production forecaster is retrained (or at least re-evaluated) as time
advances.  :func:`rolling_backtest` slides an origin through the series,
evaluating the model on the windows between consecutive origins, and
optionally refreshing FOCUS's prototypes from the data seen so far
(testing the paper's premise that prototypes are "relatively universal"
— Sec. I — against actually re-fitting them).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import autograd as ag
from repro.autograd import Tensor
from repro.data.windows import SlidingWindowDataset
from repro.nn import Module
from repro.training.metrics import evaluate_forecast


@dataclasses.dataclass
class BacktestFold:
    """Metrics for one rolling-origin fold."""

    origin: int
    n_windows: int
    mse: float
    mae: float


@dataclasses.dataclass
class BacktestReport:
    """Aggregated rolling-backtest outcome (window-weighted means)."""

    folds: list[BacktestFold]

    @property
    def mse(self) -> float:
        weights = np.array([fold.n_windows for fold in self.folds], dtype=float)
        values = np.array([fold.mse for fold in self.folds])
        return float((values * weights).sum() / weights.sum())

    @property
    def mae(self) -> float:
        weights = np.array([fold.n_windows for fold in self.folds], dtype=float)
        values = np.array([fold.mae for fold in self.folds])
        return float((values * weights).sum() / weights.sum())

    @property
    def drift(self) -> float:
        """Slope of per-fold MSE over time (positive = degrading)."""
        if len(self.folds) < 2:
            return 0.0
        xs = np.arange(len(self.folds), dtype=float)
        ys = np.array([fold.mse for fold in self.folds])
        xs -= xs.mean()
        denom = float((xs**2).sum())
        return float((xs * (ys - ys.mean())).sum() / denom) if denom else 0.0


def rolling_backtest(
    model: Module,
    series: np.ndarray,
    lookback: int,
    horizon: int,
    n_folds: int = 4,
    batch_size: int = 64,
    refresh_prototypes: bool = False,
) -> BacktestReport:
    """Evaluate ``model`` over ``n_folds`` consecutive spans of ``series``.

    ``series`` is a normalized ``(T, N)`` array (typically the test
    split).  With ``refresh_prototypes=True`` and a FOCUS model, the
    prototypes are re-fit on all data before each fold's origin —
    simulating periodic offline-phase refreshes in deployment.
    """
    series = np.asarray(series, dtype=np.float64)
    total_windows = series.shape[0] - lookback - horizon + 1
    if total_windows < n_folds:
        raise ValueError("series too short for the requested fold count")
    fold_size = total_windows // n_folds
    dataset = SlidingWindowDataset(series, lookback, horizon)
    model.eval()
    folds = []
    for fold_index in range(n_folds):
        start = fold_index * fold_size
        stop = total_windows if fold_index == n_folds - 1 else start + fold_size
        if refresh_prototypes and hasattr(model, "fit_prototypes"):
            seen = series[: start + lookback]
            if seen.shape[0] >= model.config.segment_length * model.config.num_prototypes:
                model.fit_prototypes(seen)
        preds, targets = [], []
        with ag.no_grad():
            for batch_start in range(start, stop, batch_size):
                indices = np.arange(batch_start, min(batch_start + batch_size, stop))
                xs, ys = dataset.batch(indices)
                preds.append(model(Tensor(xs)).data)
                targets.append(ys)
        metrics = evaluate_forecast(np.concatenate(preds), np.concatenate(targets))
        folds.append(
            BacktestFold(
                origin=start,
                n_windows=stop - start,
                mse=metrics["mse"],
                mae=metrics["mae"],
            )
        )
    return BacktestReport(folds=folds)
