"""Minibatch trainer with validation-based early stopping.

Fault tolerance (opt-in via ``TrainerConfig.checkpoint_dir``):

- every ``checkpoint_every`` epochs the full training state — model,
  optimizer moments, data-order and dropout RNG, epoch counters, and
  history — is written atomically through
  :class:`~repro.robustness.checkpoint.CheckpointManager`;
- ``resume=True`` restores the newest valid checkpoint and continues,
  reproducing the exact same per-epoch losses an uninterrupted run
  would have produced;
- a non-finite (or, with a checkpoint available, exploding) training
  loss triggers *loss-spike recovery*: roll back to the last good
  checkpoint, halve the learning rate, and retry — up to
  ``max_recovery_retries`` times per fit — instead of aborting the
  run.  Without a checkpoint the historical hard failure
  (:class:`NonFiniteLossError`) is preserved.

Observability (see ``docs/observability.md``): every notable event —
epoch, checkpoint save/resume, loss-spike recovery — is emitted through
a :class:`~repro.telemetry.runlog.RunLogger` instead of bare prints.
``TrainerConfig.verbose`` routes events through a stdout sink that
reproduces the historical CLI lines byte-for-byte;
``TrainerConfig.telemetry_dir`` additionally writes schema-versioned
JSONL events plus a Prometheus metrics snapshot (span timings and
per-step latency/loss instruments) into the run directory.  With both
off, the only residue on the hot loop is one ``is not None`` test per
batch.
"""

from __future__ import annotations

import dataclasses
import json
import time

import numpy as np

from repro import autograd as ag
from repro.autograd import Tensor
from repro.data.windows import DataLoader, SlidingWindowDataset
from repro.nn import Module
from repro.nn import init as nn_init
from repro.optim import AdamW, clip_grad_norm
from repro.robustness.checkpoint import CheckpointManager
from repro.telemetry import (
    NULL_LOGGER,
    NULL_TRACER,
    MetricsRegistry,
    RunLogger,
    StdoutSink,
    Tracer,
    TrainingInstruments,
    write_prometheus,
)
from repro.training.metrics import evaluate_forecast


class NonFiniteLossError(RuntimeError):
    """Raised when training diverges and no recovery path is available."""


@dataclasses.dataclass
class TrainerConfig:
    """Training hyperparameters (shared by FOCUS and all baselines for a
    fair Table III comparison)."""

    epochs: int = 5
    batch_size: int = 32
    lr: float = 3e-3
    weight_decay: float = 1e-4
    grad_clip: float = 5.0
    patience: int = 3
    restore_best: bool = True
    seed: int = 0
    verbose: bool = False
    # Fault tolerance (all inert unless checkpoint_dir is set).
    checkpoint_dir: str | None = None
    checkpoint_every: int = 1
    resume: bool = False
    keep_checkpoints: int = 3
    max_recovery_retries: int = 3
    # A finite epoch loss this many times the best epoch loss so far is
    # treated as a spike (recovery only; never a hard failure).
    loss_explosion_factor: float = 1e4
    # Telemetry (inert unless set): run directory receiving JSONL events
    # (events.jsonl) and a Prometheus metrics snapshot (metrics.prom).
    telemetry_dir: str | None = None


@dataclasses.dataclass
class TrainingHistory:
    """Per-epoch losses and timing collected during :meth:`Trainer.fit`."""

    train_losses: list[float] = dataclasses.field(default_factory=list)
    val_losses: list[float] = dataclasses.field(default_factory=list)
    best_epoch: int = -1
    train_seconds: float = 0.0
    # One entry per loss-spike rollback: epoch, restored_epoch, reason, lr.
    recoveries: list[dict] = dataclasses.field(default_factory=list)

    @property
    def best_val_loss(self) -> float:
        if not self.val_losses:
            return float("nan")
        return self.val_losses[self.best_epoch]


class Trainer:
    """MSE-objective trainer mirroring the paper's protocol.

    Trains with AdamW, clips gradients, restores the best-validation
    weights at the end (early stopping with ``patience``).
    """

    def __init__(
        self,
        model: Module,
        config: TrainerConfig | None = None,
        run_logger: RunLogger | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.model = model
        self.config = config or TrainerConfig()
        self.optimizer = AdamW(
            model.parameters(), lr=self.config.lr, weight_decay=self.config.weight_decay
        )
        # Externally-owned telemetry (e.g. one logger shared by training
        # and streaming); when None, fit() builds its own from the config.
        self.run_logger = run_logger
        self.registry = registry

    def _fit_telemetry(self):
        """Resolve (logger, registry, tracer, instruments, owns_logger)."""
        cfg = self.config
        owns = False
        logger = self.run_logger
        if logger is None:
            if cfg.telemetry_dir:
                logger = RunLogger.to_dir(cfg.telemetry_dir, verbose=cfg.verbose)
                owns = True
            elif cfg.verbose:
                logger = RunLogger([StdoutSink()])
                owns = True
            else:
                logger = NULL_LOGGER
        registry = self.registry
        if registry is None and cfg.telemetry_dir:
            registry = MetricsRegistry()
        tracer = Tracer(registry) if registry is not None else NULL_TRACER
        instruments = TrainingInstruments(registry) if registry is not None else None
        return logger, registry, tracer, instruments, owns

    def _model_dtype(self) -> np.dtype:
        """The parameter dtype batches must match (float32/float64 runs)."""
        return next(iter(self.model.parameters())).data.dtype

    @staticmethod
    def _as_batch(array: np.ndarray, dtype: np.dtype) -> Tensor:
        """Wrap a loader batch once, casting only on a dtype mismatch."""
        return Tensor(array if array.dtype == dtype else array.astype(dtype))

    def _epoch(
        self, loader: DataLoader, instruments: TrainingInstruments | None = None
    ) -> float:
        self.model.train()
        dtype = self._model_dtype()
        total, batches = 0.0, 0
        for x_batch, y_batch in loader:
            step_started = time.perf_counter() if instruments is not None else 0.0
            x = self._as_batch(x_batch, dtype)
            y = self._as_batch(y_batch, dtype)
            pred = self.model(x)
            loss = ((pred - y) ** 2.0).mean()
            if not np.isfinite(loss.item()):
                raise NonFiniteLossError(
                    f"non-finite training loss ({loss.item()}) at batch {batches}; "
                    "check the learning rate and input normalization"
                )
            self.optimizer.zero_grad()
            loss.backward()
            if self.config.grad_clip:
                clip_grad_norm(self.optimizer.parameters, self.config.grad_clip)
            self.optimizer.step()
            total += loss.item()
            batches += 1
            if instruments is not None:
                instruments.record_step(
                    loss.item(), time.perf_counter() - step_started
                )
        return total / max(batches, 1)

    def validation_loss(self, dataset: SlidingWindowDataset, max_batches: int | None = None) -> float:
        self.model.eval()
        dtype = self._model_dtype()
        loader = DataLoader(dataset, self.config.batch_size)
        total, batches = 0.0, 0
        with ag.no_grad():
            for x_batch, y_batch in loader:
                pred = self.model(self._as_batch(x_batch, dtype))
                total += float(((pred.data - y_batch) ** 2).mean())
                batches += 1
                if max_batches is not None and batches >= max_batches:
                    break
        return total / max(batches, 1)

    # ------------------------------------------------------------------
    # Checkpoint packing / unpacking
    # ------------------------------------------------------------------
    def _pack_checkpoint(
        self,
        epoch: int,
        history: TrainingHistory,
        best_state: dict[str, np.ndarray] | None,
        bad_epochs: int,
        loader: DataLoader,
        prior_seconds: float,
        started: float,
    ) -> dict[str, np.ndarray]:
        arrays: dict[str, np.ndarray] = {
            f"model/{name}": value for name, value in self.model.state_dict().items()
        }
        opt = self.optimizer
        if hasattr(opt, "_m"):
            for i, moment in enumerate(opt._m):
                arrays[f"optim/m/{i}"] = moment
            for i, moment in enumerate(opt._v):
                arrays[f"optim/v/{i}"] = moment
        if best_state is not None:
            arrays.update({f"best/{name}": value for name, value in best_state.items()})
        meta = {
            "schema": 1,
            "dtype": self._model_dtype().name,
            "epoch": epoch,
            "lr": float(opt.lr),
            "step_count": int(getattr(opt, "_step_count", 0)),
            "bad_epochs": int(bad_epochs),
            "train_losses": history.train_losses,
            "val_losses": history.val_losses,
            "best_epoch": history.best_epoch,
            "recoveries": history.recoveries,
            "train_seconds": prior_seconds + (time.perf_counter() - started),
            "has_best": best_state is not None,
            "rng": {
                "loader": loader._rng.bit_generator.state,
                "init": nn_init.get_rng().bit_generator.state,
            },
        }
        arrays["meta"] = np.array(json.dumps(meta))
        return arrays

    def _apply_checkpoint(
        self, arrays: dict[str, np.ndarray], loader: DataLoader | None
    ) -> tuple[dict, dict[str, np.ndarray] | None]:
        """Restore model/optimizer/RNG state; return (meta, best_state)."""
        meta = json.loads(str(arrays["meta"]))
        ckpt_dtype = meta.get("dtype")
        if ckpt_dtype is not None and np.dtype(ckpt_dtype) != self._model_dtype():
            # A float32 run must resume as float32 (and vice versa): cast
            # the live model and optimizer state before the in-place
            # restore below, which would otherwise silently re-cast the
            # checkpoint to the model's construction dtype.
            self.model.to_dtype(ckpt_dtype)
            self.optimizer.cast_state(ckpt_dtype)
        self.model.load_state_dict(
            {
                name[len("model/"):]: value
                for name, value in arrays.items()
                if name.startswith("model/")
            }
        )
        opt = self.optimizer
        opt.lr = float(meta["lr"])
        if hasattr(opt, "_step_count"):
            opt._step_count = int(meta["step_count"])
        if hasattr(opt, "_m"):
            for i, moment in enumerate(opt._m):
                moment[...] = arrays[f"optim/m/{i}"]
            for i, moment in enumerate(opt._v):
                moment[...] = arrays[f"optim/v/{i}"]
        rng = meta.get("rng", {})
        if loader is not None and rng.get("loader"):
            loader._rng.bit_generator.state = rng["loader"]
        if rng.get("init"):
            nn_init.get_rng().bit_generator.state = rng["init"]
        best_state = None
        if meta.get("has_best"):
            best_state = {
                name[len("best/"):]: np.array(value, copy=True)
                for name, value in arrays.items()
                if name.startswith("best/")
            }
        return meta, best_state

    @staticmethod
    def _restore_history(history: TrainingHistory, meta: dict) -> None:
        history.train_losses[:] = [float(v) for v in meta["train_losses"]]
        history.val_losses[:] = [float(v) for v in meta["val_losses"]]
        history.best_epoch = int(meta["best_epoch"])
        history.recoveries[:] = list(meta.get("recoveries", []))

    def _is_explosion(self, train_loss: float, history: TrainingHistory) -> bool:
        factor = self.config.loss_explosion_factor
        prior = [loss for loss in history.train_losses if np.isfinite(loss)]
        if not factor or not prior:
            return False
        return train_loss > factor * max(min(prior), 1e-12)

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def fit(
        self,
        train_dataset: SlidingWindowDataset,
        val_dataset: SlidingWindowDataset | None = None,
    ) -> TrainingHistory:
        cfg = self.config
        logger, registry, tracer, instruments, owns_logger = self._fit_telemetry()
        try:
            return self._fit(
                train_dataset, val_dataset, logger, registry, tracer, instruments
            )
        finally:
            if registry is not None and cfg.telemetry_dir:
                write_prometheus(registry, cfg.telemetry_dir)
            if owns_logger:
                logger.close()

    def _fit(
        self,
        train_dataset: SlidingWindowDataset,
        val_dataset: SlidingWindowDataset | None,
        logger: RunLogger,
        registry: MetricsRegistry | None,
        tracer,
        instruments: TrainingInstruments | None,
    ) -> TrainingHistory:
        cfg = self.config
        loader = DataLoader(
            train_dataset, cfg.batch_size, shuffle=True, seed=cfg.seed
        )
        history = TrainingHistory()
        best_state = None
        bad_epochs = 0
        start_epoch = 0
        prior_seconds = 0.0
        logger.event(
            "run_start",
            kind="fit",
            model=type(self.model).__name__,
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            lr=cfg.lr,
            dtype=self._model_dtype().name,
        )
        manager = None
        if cfg.checkpoint_dir:
            manager = CheckpointManager(cfg.checkpoint_dir, keep=cfg.keep_checkpoints)
            if cfg.resume:
                latest = manager.load_latest()
                if latest is not None:
                    ckpt_epoch, arrays = latest
                    meta, best_state = self._apply_checkpoint(arrays, loader)
                    self._restore_history(history, meta)
                    bad_epochs = int(meta["bad_epochs"])
                    prior_seconds = float(meta.get("train_seconds", 0.0))
                    start_epoch = ckpt_epoch + 1
                    logger.event("checkpoint_resume", epoch=ckpt_epoch)
        retries = 0
        started = time.perf_counter()
        epoch = start_epoch
        while epoch < cfg.epochs:
            try:
                with tracer.span("epoch.train"):
                    train_loss = self._epoch(loader, instruments)
                if self._can_recover(manager, retries) and self._is_explosion(
                    train_loss, history
                ):
                    best_prior = min(
                        loss for loss in history.train_losses if np.isfinite(loss)
                    )
                    raise NonFiniteLossError(
                        f"exploding training loss ({train_loss:.3e}, best prior "
                        f"{best_prior:.3e}) at epoch {epoch}"
                    )
            except NonFiniteLossError as error:
                if not self._can_recover(manager, retries):
                    raise
                latest = manager.load_latest()
                if latest is None:
                    raise
                ckpt_epoch, arrays = latest
                halved_lr = 0.5 * self.optimizer.lr
                meta, best_state = self._apply_checkpoint(arrays, loader)
                self._restore_history(history, meta)
                bad_epochs = int(meta["bad_epochs"])
                self.optimizer.lr = halved_lr
                retries += 1
                history.recoveries.append(
                    {
                        "epoch": epoch,
                        "restored_epoch": ckpt_epoch,
                        "reason": str(error),
                        "lr": halved_lr,
                    }
                )
                logger.event(
                    "recovery",
                    epoch=epoch,
                    restored_epoch=ckpt_epoch,
                    reason=str(error),
                    lr=halved_lr,
                    retry=retries,
                    max_retries=cfg.max_recovery_retries,
                )
                epoch = ckpt_epoch + 1
                continue
            history.train_losses.append(train_loss)
            if val_dataset is not None:
                with tracer.span("epoch.validate"):
                    val_loss = self.validation_loss(val_dataset)
                history.val_losses.append(val_loss)
                if history.best_epoch < 0 or val_loss < history.best_val_loss:
                    history.best_epoch = epoch
                    if cfg.restore_best:
                        # Snapshot defensively: state_dict() makes no
                        # ownership guarantee (torch-style implementations
                        # return references to the live arrays), and later
                        # optimizer steps mutate parameters in place — an
                        # aliased snapshot would silently restore the
                        # *final* weights instead of the best ones.
                        best_state = {
                            name: np.array(value, copy=True)
                            for name, value in self.model.state_dict().items()
                        }
                    bad_epochs = 0
                else:
                    bad_epochs += 1
                logger.event(
                    "epoch", epoch=epoch, train_loss=train_loss, val_loss=val_loss
                )
                if bad_epochs > cfg.patience:
                    break
            else:
                logger.event("epoch", epoch=epoch, train_loss=train_loss)
            if (
                manager is not None
                and cfg.checkpoint_every
                and (epoch + 1) % cfg.checkpoint_every == 0
            ):
                with tracer.span("checkpoint.save"):
                    path = manager.save(
                        self._pack_checkpoint(
                            epoch, history, best_state, bad_epochs, loader,
                            prior_seconds, started,
                        ),
                        epoch,
                    )
                logger.event("checkpoint_save", epoch=epoch, path=str(path))
            epoch += 1
        if best_state is not None:
            self.model.load_state_dict(best_state)
        history.train_seconds = prior_seconds + (time.perf_counter() - started)
        logger.event(
            "run_end",
            kind="fit",
            train_seconds=history.train_seconds,
            best_epoch=history.best_epoch,
            epochs_run=len(history.train_losses),
            recoveries=len(history.recoveries),
        )
        return history

    def _can_recover(self, manager: CheckpointManager | None, retries: int) -> bool:
        return (
            manager is not None
            and retries < self.config.max_recovery_retries
            and manager.has_checkpoint()
        )

    def evaluate(
        self, dataset: SlidingWindowDataset, stride_subsample: int = 1
    ) -> dict[str, float]:
        """Metrics over a dataset (optionally subsampled for speed)."""
        self.model.eval()
        indices = np.arange(0, len(dataset), stride_subsample)
        if len(indices) == 0:
            raise ValueError(
                "cannot evaluate on an empty dataset (0 windows); "
                "check the split lengths against lookback + horizon"
            )
        dtype = self._model_dtype()
        preds, targets = [], []
        with ag.no_grad():
            for start in range(0, len(indices), self.config.batch_size):
                batch_idx = indices[start : start + self.config.batch_size]
                x_batch, y_batch = dataset.batch(batch_idx)
                preds.append(self.model(self._as_batch(x_batch, dtype)).data)
                targets.append(y_batch)
        return evaluate_forecast(np.concatenate(preds), np.concatenate(targets))
