"""Minibatch trainer with validation-based early stopping."""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro import autograd as ag
from repro.autograd import Tensor
from repro.data.windows import DataLoader, SlidingWindowDataset
from repro.nn import Module
from repro.optim import AdamW, clip_grad_norm
from repro.training.metrics import evaluate_forecast


@dataclasses.dataclass
class TrainerConfig:
    """Training hyperparameters (shared by FOCUS and all baselines for a
    fair Table III comparison)."""

    epochs: int = 5
    batch_size: int = 32
    lr: float = 3e-3
    weight_decay: float = 1e-4
    grad_clip: float = 5.0
    patience: int = 3
    restore_best: bool = True
    seed: int = 0
    verbose: bool = False


@dataclasses.dataclass
class TrainingHistory:
    """Per-epoch losses and timing collected during :meth:`Trainer.fit`."""

    train_losses: list[float] = dataclasses.field(default_factory=list)
    val_losses: list[float] = dataclasses.field(default_factory=list)
    best_epoch: int = -1
    train_seconds: float = 0.0

    @property
    def best_val_loss(self) -> float:
        if not self.val_losses:
            return float("nan")
        return self.val_losses[self.best_epoch]


class Trainer:
    """MSE-objective trainer mirroring the paper's protocol.

    Trains with AdamW, clips gradients, restores the best-validation
    weights at the end (early stopping with ``patience``).
    """

    def __init__(self, model: Module, config: TrainerConfig | None = None):
        self.model = model
        self.config = config or TrainerConfig()
        self.optimizer = AdamW(
            model.parameters(), lr=self.config.lr, weight_decay=self.config.weight_decay
        )

    def _epoch(self, loader: DataLoader) -> float:
        self.model.train()
        total, batches = 0.0, 0
        for x_batch, y_batch in loader:
            pred = self.model(Tensor(x_batch))
            loss = ((pred - Tensor(y_batch)) ** 2.0).mean()
            if not np.isfinite(loss.item()):
                raise RuntimeError(
                    f"non-finite training loss ({loss.item()}) at batch {batches}; "
                    "check the learning rate and input normalization"
                )
            self.optimizer.zero_grad()
            loss.backward()
            if self.config.grad_clip:
                clip_grad_norm(self.optimizer.parameters, self.config.grad_clip)
            self.optimizer.step()
            total += loss.item()
            batches += 1
        return total / max(batches, 1)

    def validation_loss(self, dataset: SlidingWindowDataset, max_batches: int | None = None) -> float:
        self.model.eval()
        loader = DataLoader(dataset, self.config.batch_size)
        total, batches = 0.0, 0
        with ag.no_grad():
            for x_batch, y_batch in loader:
                pred = self.model(Tensor(x_batch))
                total += float(((pred.data - y_batch) ** 2).mean())
                batches += 1
                if max_batches is not None and batches >= max_batches:
                    break
        return total / max(batches, 1)

    def fit(
        self,
        train_dataset: SlidingWindowDataset,
        val_dataset: SlidingWindowDataset | None = None,
    ) -> TrainingHistory:
        cfg = self.config
        loader = DataLoader(
            train_dataset, cfg.batch_size, shuffle=True, seed=cfg.seed
        )
        history = TrainingHistory()
        best_state = None
        bad_epochs = 0
        started = time.perf_counter()
        for epoch in range(cfg.epochs):
            train_loss = self._epoch(loader)
            history.train_losses.append(train_loss)
            if val_dataset is not None:
                val_loss = self.validation_loss(val_dataset)
                history.val_losses.append(val_loss)
                if history.best_epoch < 0 or val_loss < history.best_val_loss:
                    history.best_epoch = epoch
                    if cfg.restore_best:
                        # Snapshot defensively: state_dict() makes no
                        # ownership guarantee (torch-style implementations
                        # return references to the live arrays), and later
                        # optimizer steps mutate parameters in place — an
                        # aliased snapshot would silently restore the
                        # *final* weights instead of the best ones.
                        best_state = {
                            name: np.array(value, copy=True)
                            for name, value in self.model.state_dict().items()
                        }
                    bad_epochs = 0
                else:
                    bad_epochs += 1
                if cfg.verbose:
                    print(f"epoch {epoch}: train {train_loss:.4f} val {val_loss:.4f}")
                if bad_epochs > cfg.patience:
                    break
            elif cfg.verbose:
                print(f"epoch {epoch}: train {train_loss:.4f}")
        if best_state is not None:
            self.model.load_state_dict(best_state)
        history.train_seconds = time.perf_counter() - started
        return history

    def evaluate(
        self, dataset: SlidingWindowDataset, stride_subsample: int = 1
    ) -> dict[str, float]:
        """Metrics over a dataset (optionally subsampled for speed)."""
        self.model.eval()
        indices = np.arange(0, len(dataset), stride_subsample)
        preds, targets = [], []
        with ag.no_grad():
            for start in range(0, len(indices), self.config.batch_size):
                batch_idx = indices[start : start + self.config.batch_size]
                x_batch, y_batch = dataset.batch(batch_idx)
                preds.append(self.model(Tensor(x_batch)).data)
                targets.append(y_batch)
        return evaluate_forecast(np.concatenate(preds), np.concatenate(targets))
