"""Experiment runner shared by the Table III / IV / figure benchmarks.

One call of :func:`run_experiment` reproduces the paper's per-cell
protocol: generate the dataset, run FOCUS's offline clustering (when the
model is FOCUS), train with the shared Trainer, evaluate MSE/MAE on the
test split, and account FLOPs / activation memory / parameters with the
profiler.
"""

from __future__ import annotations

import dataclasses

from repro.baselines import build_baseline
from repro.core import ClusteringConfig, FOCUSConfig, make_focus_variant
from repro.data import ForecastingData, load_dataset
from repro.nn import Module
from repro.nn import init as nn_init
from repro.profiling import ProfileReport, profile_model
from repro.training.trainer import Trainer, TrainerConfig


@dataclasses.dataclass
class ExperimentConfig:
    """Everything needed to reproduce one table cell."""

    model: str
    dataset: str
    lookback: int = 96
    horizon: int = 24
    scale: str = "smoke"
    seed: int = 0
    segment_length: int = 12
    num_prototypes: int = 8
    d_model: int = 64
    num_readout: int = 16
    trainer: TrainerConfig = dataclasses.field(default_factory=TrainerConfig)
    eval_stride: int = 4
    train_stride: int = 1
    model_kwargs: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class ExperimentResult:
    """Accuracy + efficiency numbers for one (model, dataset, horizon)."""

    config: ExperimentConfig
    metrics: dict[str, float]
    profile: ProfileReport
    train_seconds: float

    @property
    def mse(self) -> float:
        return self.metrics["mse"]

    @property
    def mae(self) -> float:
        return self.metrics["mae"]

    def row(self) -> dict[str, float | str]:
        """Flat record for tabular printing."""
        return {
            "model": self.config.model,
            "dataset": self.config.dataset,
            "horizon": self.config.horizon,
            "mse": round(self.mse, 4),
            "mae": round(self.mae, 4),
            "flops_m": round(self.profile.mflops, 2),
            "mem_mb": round(self.profile.activation_mb, 2),
            "params_k": round(self.profile.parameter_k, 1),
        }


FOCUS_VARIANTS = {"focus", "focus-attn", "focus-lnrfusion", "focus-alllnr"}


def build_model(config: ExperimentConfig, data: ForecastingData) -> Module:
    """Construct (and, for FOCUS, offline-fit) the requested model."""
    nn_init.seed(config.seed)
    name = config.model.lower()
    if name in FOCUS_VARIANTS:
        focus_config = FOCUSConfig(
            lookback=config.lookback,
            horizon=config.horizon,
            num_entities=data.num_entities,
            segment_length=config.segment_length,
            num_prototypes=config.num_prototypes,
            d_model=config.d_model,
            num_readout=config.num_readout,
            **config.model_kwargs,
        )
        variant = {"focus": "focus", "focus-attn": "attn",
                   "focus-lnrfusion": "lnr_fusion", "focus-alllnr": "all_lnr"}[name]
        model = make_focus_variant(variant, focus_config)
        if variant in ("focus", "lnr_fusion"):
            model.fit_prototypes(
                data.train,
                ClusteringConfig(
                    num_prototypes=config.num_prototypes,
                    segment_length=config.segment_length,
                    seed=config.seed,
                ),
            )
        return model
    kwargs = dict(config.model_kwargs)
    if name in ("patchtst",):
        kwargs.setdefault("patch_length", config.segment_length)
        kwargs.setdefault("d_model", config.d_model)
    if name in ("crossformer",):
        kwargs.setdefault("segment_length", config.segment_length)
        kwargs.setdefault("d_model", config.d_model)
    return build_baseline(
        config.model, config.lookback, config.horizon, data.num_entities, **kwargs
    )


def run_experiment(
    config: ExperimentConfig, data: ForecastingData | None = None
) -> ExperimentResult:
    """Train and evaluate one model on one dataset; profile its inference."""
    if data is None:
        data = load_dataset(config.dataset, scale=config.scale, seed=config.seed)
    model = build_model(config, data)
    trainer = Trainer(model, config.trainer)
    train_windows = data.windows(
        "train", config.lookback, config.horizon, stride=config.train_stride
    )
    val_windows = data.windows("val", config.lookback, config.horizon)
    history = trainer.fit(train_windows, val_windows)
    test_windows = data.windows("test", config.lookback, config.horizon)
    metrics = trainer.evaluate(test_windows, stride_subsample=config.eval_stride)
    profile = profile_model(model, (1, config.lookback, data.num_entities))
    return ExperimentResult(
        config=config,
        metrics=metrics,
        profile=profile,
        train_seconds=history.train_seconds,
    )
