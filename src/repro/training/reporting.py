"""Plain-text tabular reporting for benchmark output.

The benchmark harness prints the same rows the paper's tables report;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    rule = "-+-".join("-" * widths[col] for col in columns)
    lines = [header, rule]
    for row in rows:
        lines.append(
            " | ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    body = "\n".join(lines)
    return f"{title}\n{body}" if title else body


def rank_by(rows: Sequence[Mapping[str, object]], key: str) -> list[Mapping[str, object]]:
    """Rows sorted ascending by a numeric column (lower = better)."""
    return sorted(rows, key=lambda row: float(row[key]))


def best_model(rows: Sequence[Mapping[str, object]], key: str = "mse") -> str:
    """Name of the winning model in a result table."""
    return str(rank_by(rows, key)[0]["model"])
