"""Training loop, metrics, and the experiment runner used by benchmarks."""

from repro.training.metrics import evaluate_forecast, mae, mape, mse, rmse
from repro.training.trainer import (
    NonFiniteLossError,
    Trainer,
    TrainerConfig,
    TrainingHistory,
)
from repro.training.experiment import (
    ExperimentConfig,
    ExperimentResult,
    build_model,
    run_experiment,
)
from repro.training.backtest import BacktestReport, rolling_backtest
from repro.training.reporting import best_model, format_table, rank_by

__all__ = [
    "BacktestReport",
    "rolling_backtest",
    "best_model",
    "format_table",
    "rank_by",
    "mse",
    "mae",
    "rmse",
    "mape",
    "evaluate_forecast",
    "NonFiniteLossError",
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "ExperimentConfig",
    "ExperimentResult",
    "build_model",
    "run_experiment",
]
