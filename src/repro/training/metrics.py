"""Forecast accuracy metrics (the paper reports MSE and MAE)."""

from __future__ import annotations

import numpy as np


def _validate(pred: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return pred, target


def mse(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error."""
    pred, target = _validate(pred, target)
    return float(((pred - target) ** 2).mean())


def mae(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error."""
    pred, target = _validate(pred, target)
    return float(np.abs(pred - target).mean())


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(pred, target)))


def mape(pred: np.ndarray, target: np.ndarray, eps: float = 1e-8) -> float:
    """Mean absolute percentage error (small denominators masked)."""
    pred, target = _validate(pred, target)
    mask = np.abs(target) > eps
    if not mask.any():
        return 0.0
    return float((np.abs(pred - target)[mask] / np.abs(target)[mask]).mean())


def evaluate_forecast(pred: np.ndarray, target: np.ndarray) -> dict[str, float]:
    """All metrics at once, keyed by name."""
    return {
        "mse": mse(pred, target),
        "mae": mae(pred, target),
        "rmse": rmse(pred, target),
        "mape": mape(pred, target),
    }
