"""Grid search over model hyperparameters (the paper's tuning protocol).

Sec. VIII-A: "Other hyperparameters employed in the experiment, including
the segment length p and the number of prototypes k, were obtained
through the grid-search method."  :func:`grid_search` evaluates every
combination of the supplied grids on the validation split and returns
the trials sorted by validation MSE.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from typing import Any, Mapping, Sequence

from repro.data.loading import ForecastingData
from repro.training.experiment import ExperimentConfig, build_model
from repro.training.trainer import Trainer, TrainerConfig


@dataclasses.dataclass
class Trial:
    """One evaluated grid cell."""

    params: dict[str, Any]
    val_mse: float
    val_mae: float
    seconds: float


@dataclasses.dataclass
class GridSearchResult:
    """All evaluated trials plus accessors for the winner."""

    trials: list[Trial]

    @property
    def best(self) -> Trial:
        return min(self.trials, key=lambda t: t.val_mse)

    def as_rows(self) -> list[dict[str, Any]]:
        rows = []
        for trial in sorted(self.trials, key=lambda t: t.val_mse):
            row = dict(trial.params)
            row["val_mse"] = round(trial.val_mse, 4)
            row["val_mae"] = round(trial.val_mae, 4)
            row["seconds"] = round(trial.seconds, 1)
            rows.append(row)
        return rows


def grid_search(
    model: str,
    data: ForecastingData,
    param_grid: Mapping[str, Sequence[Any]],
    lookback: int = 96,
    horizon: int = 24,
    trainer: TrainerConfig | None = None,
    train_stride: int = 2,
    base_config: ExperimentConfig | None = None,
) -> GridSearchResult:
    """Evaluate every combination in ``param_grid`` on the val split.

    Grid keys may be ExperimentConfig fields (``segment_length``,
    ``num_prototypes``, ``d_model``, ``num_readout``) or arbitrary
    model kwargs (anything else goes into ``model_kwargs``).
    """
    if not param_grid:
        raise ValueError("param_grid must not be empty")
    trainer = trainer or TrainerConfig(
        epochs=3, batch_size=32, lr=5e-3, patience=99, restore_best=False
    )
    config_fields = {field.name for field in dataclasses.fields(ExperimentConfig)}
    names = list(param_grid)
    trials = []
    for values in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        config_kwargs = {k: v for k, v in params.items() if k in config_fields}
        model_kwargs = {k: v for k, v in params.items() if k not in config_fields}
        if base_config is not None:
            config = dataclasses.replace(base_config, **config_kwargs)
            config.model_kwargs = {**base_config.model_kwargs, **model_kwargs}
        else:
            config = ExperimentConfig(
                model=model,
                dataset=data.spec.name,
                lookback=lookback,
                horizon=horizon,
                trainer=trainer,
                model_kwargs=model_kwargs,
                **config_kwargs,
            )
        started = time.perf_counter()
        candidate = build_model(config, data)
        runner = Trainer(candidate, trainer)
        runner.fit(
            data.windows("train", config.lookback, horizon, stride=train_stride),
            data.windows("val", config.lookback, horizon),
        )
        metrics = runner.evaluate(
            data.windows("val", config.lookback, horizon), stride_subsample=2
        )
        trials.append(
            Trial(
                params=params,
                val_mse=metrics["mse"],
                val_mae=metrics["mae"],
                seconds=time.perf_counter() - started,
            )
        )
    return GridSearchResult(trials=trials)
