"""First-order optimizers over :class:`repro.autograd.Tensor` parameters.

All optimizers default to in-place updates (``in_place=True``): moment
buffers and weights are updated with ``np.multiply/np.add(..., out=...)``
through a small per-shape scratch pool, so a step allocates zero
temporaries once the pool is warm.  The in-place sequences replay the
exact numpy operations of the original out-of-place implementation
(scalar factors commute bitwise), so results are bit-identical; pass
``in_place=False`` to run the historical reference path, kept as the
bit-stability oracle and for the allocation benchmark.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.autograd import Tensor
from repro.autograd.tensor import note_alloc


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm.

    Returns the pre-clipping norm.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


def _noted(array: np.ndarray) -> np.ndarray:
    note_alloc(array)
    return array


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Sequence[Tensor], lr: float, in_place: bool = True):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.in_place = in_place
        self._scratch_pool: dict[tuple, np.ndarray] = {}

    def _scratch(self, like: np.ndarray, slot: int = 0) -> np.ndarray:
        """Reusable uninitialised buffer matching ``like``'s shape/dtype."""
        key = (like.shape, like.dtype.str, slot)
        buf = self._scratch_pool.get(key)
        if buf is None:
            buf = np.empty_like(like)
            note_alloc(buf)
            self._scratch_pool[key] = buf
        return buf

    def cast_state(self, dtype) -> None:
        """Cast optimizer state buffers to ``dtype`` (e.g. on resume)."""
        self._scratch_pool.clear()

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float,
        momentum: float = 0.0,
        in_place: bool = True,
    ):
        super().__init__(parameters, lr, in_place=in_place)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def cast_state(self, dtype) -> None:
        super().cast_state(dtype)
        dtype = np.dtype(dtype)
        self._velocity = [v.astype(dtype, copy=False) for v in self._velocity]

    def step(self) -> None:
        for p, vel in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if not self.in_place:
                if self.momentum:
                    vel *= self.momentum
                    vel += p.grad
                    p.data -= _noted(self.lr * vel)
                else:
                    p.data -= _noted(self.lr * p.grad)
                continue
            s = self._scratch(p.data)
            if self.momentum:
                np.multiply(vel, self.momentum, out=vel)
                np.add(vel, p.grad, out=vel)
                np.multiply(vel, self.lr, out=s)
            else:
                np.multiply(p.grad, self.lr, out=s)
            np.subtract(p.data, s, out=p.data)


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected moment estimates.

    ``weight_decay`` here is the classic L2 penalty added to the gradient
    (torch.optim.Adam semantics); use :class:`AdamW` for decoupled decay.
    """

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        in_place: bool = True,
    ):
        super().__init__(parameters, lr, in_place=in_place)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def cast_state(self, dtype) -> None:
        super().cast_state(dtype)
        dtype = np.dtype(dtype)
        self._m = [m.astype(dtype, copy=False) for m in self._m]
        self._v = [v.astype(dtype, copy=False) for v in self._v]

    def _update(self, p: Tensor, m: np.ndarray, v: np.ndarray, grad: np.ndarray) -> None:
        if not self.in_place:
            self._update_reference(p, m, v, grad)
            return
        # Same numpy op sequence as the reference path, routed through two
        # scratch buffers: results are bit-identical, zero temporaries.
        s = self._scratch(p.data, 0)
        t = self._scratch(p.data, 1)
        np.multiply(m, self.beta1, out=m)
        np.multiply(grad, 1.0 - self.beta1, out=s)
        np.add(m, s, out=m)
        np.multiply(v, self.beta2, out=v)
        np.multiply(grad, grad, out=s)
        np.multiply(s, 1.0 - self.beta2, out=s)
        np.add(v, s, out=v)
        np.divide(m, 1.0 - self.beta1**self._step_count, out=s)
        np.multiply(s, self.lr, out=s)
        np.divide(v, 1.0 - self.beta2**self._step_count, out=t)
        np.sqrt(t, out=t)
        np.add(t, self.eps, out=t)
        np.divide(s, t, out=s)
        np.subtract(p.data, s, out=p.data)

    def _update_reference(
        self, p: Tensor, m: np.ndarray, v: np.ndarray, grad: np.ndarray
    ) -> None:
        # Historical out-of-place implementation (bit-stability oracle).
        m *= self.beta1
        m += _noted((1.0 - self.beta1) * grad)
        v *= self.beta2
        v += _noted((1.0 - self.beta2) * _noted(grad**2))
        m_hat = _noted(m / (1.0 - self.beta1**self._step_count))
        v_hat = _noted(v / (1.0 - self.beta2**self._step_count))
        p.data -= _noted(
            _noted(self.lr * m_hat) / _noted(_noted(np.sqrt(v_hat)) + self.eps)
        )

    def step(self) -> None:
        self._step_count += 1
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                if self.in_place:
                    s = self._scratch(p.data, 2)
                    np.multiply(p.data, self.weight_decay, out=s)
                    np.add(grad, s, out=s)
                    grad = s
                else:
                    grad = _noted(grad + _noted(self.weight_decay * p.data))
            self._update(p, m, v, grad)


class AdamW(Adam):
    """AdamW: Adam with *decoupled* weight decay (Loshchilov & Hutter).

    The decay is applied directly to the weights, scaled by the learning
    rate, and never enters the moment estimates — matching the optimizer
    the FOCUS paper uses for both phases.
    """

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
        in_place: bool = True,
    ):
        super().__init__(parameters, lr, betas, eps, weight_decay=0.0, in_place=in_place)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        self._step_count += 1
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            if self.decoupled_weight_decay:
                if self.in_place:
                    s = self._scratch(p.data, 2)
                    np.multiply(p.data, self.lr * self.decoupled_weight_decay, out=s)
                    np.subtract(p.data, s, out=p.data)
                else:
                    p.data -= _noted(self.lr * self.decoupled_weight_decay * p.data)
            self._update(p, m, v, p.grad)
