"""First-order optimizers over :class:`repro.autograd.Tensor` parameters."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.autograd import Tensor


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm.

    Returns the pre-clipping norm.
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Sequence[Tensor], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: Sequence[Tensor], lr: float, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, vel in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                vel *= self.momentum
                vel += p.grad
                p.data -= self.lr * vel
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected moment estimates.

    ``weight_decay`` here is the classic L2 penalty added to the gradient
    (torch.optim.Adam semantics); use :class:`AdamW` for decoupled decay.
    """

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _update(self, p: Tensor, m: np.ndarray, v: np.ndarray, grad: np.ndarray) -> None:
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad**2
        m_hat = m / (1.0 - self.beta1**self._step_count)
        v_hat = v / (1.0 - self.beta2**self._step_count)
        p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self) -> None:
        self._step_count += 1
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._update(p, m, v, grad)


class AdamW(Adam):
    """AdamW: Adam with *decoupled* weight decay (Loshchilov & Hutter).

    The decay is applied directly to the weights, scaled by the learning
    rate, and never enters the moment estimates — matching the optimizer
    the FOCUS paper uses for both phases.
    """

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ):
        super().__init__(parameters, lr, betas, eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        self._step_count += 1
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            if self.decoupled_weight_decay:
                p.data -= self.lr * self.decoupled_weight_decay * p.data
            self._update(p, m, v, p.grad)
