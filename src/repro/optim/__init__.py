"""Optimizers and learning-rate schedulers.

The paper optimizes both its prototype refinement (Sec. V) and its
forecasting network with AdamW (decoupled weight decay, Loshchilov &
Hutter); :class:`AdamW` here follows the same update rule.
"""

from repro.optim.optimizers import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from repro.optim.schedulers import ConstantLR, CosineAnnealingLR, StepLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "ConstantLR",
    "StepLR",
    "CosineAnnealingLR",
]
