"""Learning-rate schedulers (mutate the wrapped optimizer's lr in place)."""

from __future__ import annotations

import numpy as np

from repro.optim.optimizers import Optimizer


class _Scheduler:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr(self.epoch)

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantLR(_Scheduler):
    """No-op scheduler (uniform interface for Trainer)."""

    def get_lr(self, epoch: int) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    """Multiply lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from base_lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + np.cos(np.pi * progress)
        )
