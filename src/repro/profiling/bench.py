"""Hot-path micro-benchmarks behind ``repro bench`` / BENCH_hotpath.json.

Four wall-clock measurements on pinned synthetic configurations, chosen
so every future change has a performance trajectory to compare against:

1. **Offline clustering fit** — the vectorized ``(k, p)`` prototype
   refinement against the per-prototype loop reference implementation
   (equivalence is asserted, not assumed: the two must agree to 1e-8).
2. **ProtoAttn inference forward** — with the cached prototype query
   projection against a forward that recomputes C_Q every call.
3. **Streaming throughput** — ring-buffer ``observe`` steps/second and
   end-to-end ``forecast`` latency.
4. **Training step** — one full fwd+MSE+bwd+clip+AdamW step on a pinned
   FOCUS model, float64 vs float32 latency plus the per-step engine
   allocation count with in-place vs legacy gradient accumulation.
5. **Telemetry overhead** (schema 3) — the same pinned training step
   run three ways: the plain step, the step through the trainer's
   telemetry guard with instrumentation *disabled* (the ≤2%-overhead
   gate the CI telemetry job asserts), and with metrics *enabled*; plus
   the JSONL run-log writer's events/second.
6. **Serving** (schema 4) — micro-batched forecasting through the
   serving stack vs the sequential per-entity streaming loop: p50/p99
   latency and throughput at batch sizes 1/8/32 with the cache off,
   the same batched path with the cache on (hit serving), and the
   ``speedup_batch32`` ratio the CI bench-smoke job gates at >=1.5x.
7. **Fleet** (schema 5) — scatter-gather replay through the sharded
   multi-process fleet at 1/2/4(/8) shards: per-request p50/p99 and
   replay throughput per shard count, plus ``scaling_4x`` (4-shard
   over 1-shard throughput).  The >=2.5x gate is CPU-aware: asserted
   only where >=4 CPUs exist (``gate_active``), since shards cannot
   scale past the physical cores (recorded, not gated, elsewhere).
8. **Fleet observability** (schema 7) — the serving path with the full
   observability plane armed (request tracing + SLO monitor + metrics
   registry) against the same path with telemetry off, run back-to-back
   within every round; ``overhead_pct`` is the median of the per-round
   paired ratios, the <=3% gate the CI observability job asserts.
   Run-log JSONL cost is excluded (measured by the telemetry section);
   this gates the tracing machinery itself.
   Also times one fleet metrics-aggregation cycle (snapshot + ingest +
   merge across pinned shard count) as ``aggregate_ms``.

``run_benchmarks`` returns a JSON-serializable report (see
``docs/reproducing_the_paper.md`` for the schema); the ``repro bench``
CLI subcommand writes it to ``BENCH_hotpath.json``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time

import numpy as np

from repro import autograd as ag
from repro.autograd import Tensor

# Schema 7 added the fleet_observability section; schema 8 added the
# plan_engine section (compiled execution plans) and its speedup gate.
SCHEMA_VERSION = 8

# Pinned dimensions: large enough that the hot paths dominate, small
# enough that the full benchmark stays under ~1 minute on CPU.
_CLUSTER_FULL = {"segments_per_motif": 512, "segment_length": 24,
                 "num_prototypes": 16, "refine_steps": 10, "max_iters": 8}
_CLUSTER_QUICK = {"segments_per_motif": 96, "segment_length": 16,
                  "num_prototypes": 8, "refine_steps": 5, "max_iters": 5}

_ATTN_FULL = {"k": 8, "p": 16, "d_model": 64, "batch": 8, "n_segments": 32, "rounds": 30}
_ATTN_QUICK = {"k": 8, "p": 16, "d_model": 32, "batch": 4, "n_segments": 16, "rounds": 8}

_STREAM_FULL = {"lookback": 96, "entities": 8, "segment_length": 12,
                "num_prototypes": 8, "d_model": 16, "steps": 4096, "forecasts": 5}
_STREAM_QUICK = {"lookback": 48, "entities": 4, "segment_length": 12,
                 "num_prototypes": 4, "d_model": 8, "steps": 512, "forecasts": 2}

_STEP_FULL = {"lookback": 192, "horizon": 24, "entities": 16, "segment_length": 16,
              "num_prototypes": 8, "d_model": 96, "batch": 32,
              "warmup": 2, "rounds": 10}
_STEP_QUICK = {"lookback": 96, "horizon": 12, "entities": 8, "segment_length": 12,
               "num_prototypes": 4, "d_model": 32, "batch": 8,
               "warmup": 1, "rounds": 3}

_TELEM_FULL = {"warmup": 2, "rounds": 15, "events": 5000}
_TELEM_QUICK = {"warmup": 1, "rounds": 7, "events": 1000}

_SERVE_FULL = {"lookback": 96, "entities": 8, "segment_length": 12,
               "num_prototypes": 8, "d_model": 32, "horizon": 12,
               "fleet": 32, "batch_sizes": (1, 8, 32), "warmup": 2, "rounds": 12}
_SERVE_QUICK = {"lookback": 48, "entities": 4, "segment_length": 12,
                "num_prototypes": 4, "d_model": 16, "horizon": 12,
                "fleet": 32, "batch_sizes": (1, 8, 32), "warmup": 1, "rounds": 5}

#: Minimum 4-shard/1-shard throughput ratio asserted where the gate is
#: active (>=4 CPUs; below that, shards cannot scale past the cores).
FLEET_SCALING_GATE = 2.5

#: Minimum uncached ``forecast_batch`` speedup of the compiled plan
#: engine over the eager reference on the pinned single-window latency
#: shape (the path the plan engine exists for; larger batches amortize
#: eager's dispatch across rows and are reported informationally).
PLAN_SPEEDUP_GATE = 3.0

# The gate shape is pinned in both modes — a ratio gate flaps if the
# dims change — so quick mode only trims repetitions.
_PLAN_FULL = {"lookback": 48, "entities": 4, "segment_length": 12,
              "num_prototypes": 4, "d_model": 16, "horizon": 24,
              "batch_sizes": (1, 8), "warmup": 5, "rounds": 7, "reps": 60}
_PLAN_QUICK = {"lookback": 48, "entities": 4, "segment_length": 12,
               "num_prototypes": 4, "d_model": 16, "horizon": 24,
               "batch_sizes": (1, 8), "warmup": 3, "rounds": 5, "reps": 30}

#: Maximum serving-throughput cost of arming the observability plane
#: (tracing + SLO + metrics registry) relative to telemetry-off.
OBSERVABILITY_OVERHEAD_GATE_PCT = 3.0

_OBS_FULL = {"lookback": 96, "entities": 8, "segment_length": 12,
             "num_prototypes": 8, "d_model": 32, "horizon": 12,
             "fleet": 32, "max_batch": 8, "warmup": 2, "rounds": 41, "reps": 3,
             "agg_shards": 4, "agg_rounds": 50}
# Quick mode keeps the *full-size request* (the overhead gate is a ratio:
# shrinking the model inflates the machinery's relative cost and makes the
# gate flap) and economizes on fleet size and round counts instead.
_OBS_QUICK = {"lookback": 96, "entities": 8, "segment_length": 12,
              "num_prototypes": 8, "d_model": 32, "horizon": 12,
              "fleet": 16, "max_batch": 8, "warmup": 2, "rounds": 51, "reps": 3,
              "agg_shards": 4, "agg_rounds": 20}

#: ``max_batch`` is pinned across shard counts (= fleet / max shards) so
#: every forward sees the same batch size and the scaling ratio measures
#: process parallelism, not batch-amortization differences.
_FLEET_FULL = {"lookback": 96, "entities": 8, "segment_length": 12,
               "num_prototypes": 8, "d_model": 32, "horizon": 12,
               "fleet": 32, "steps": 192, "forecast_every": 4,
               "max_batch": 4, "rounds": 5, "shard_counts": (1, 2, 4, 8)}
_FLEET_QUICK = {"lookback": 48, "entities": 4, "segment_length": 12,
                "num_prototypes": 4, "d_model": 16, "horizon": 12,
                "fleet": 16, "steps": 96, "forecast_every": 4,
                "max_batch": 4, "rounds": 3, "shard_counts": (1, 2, 4)}


def _motif_segments(n_per_motif: int, p: int, k: int, seed: int = 7) -> np.ndarray:
    """Seeded segments drawn around ``k // 2`` sinusoid motifs."""
    rng = np.random.default_rng(seed)
    grid = np.linspace(0.0, 2.0 * np.pi, p)
    motifs = [np.sin((j + 1) * grid / 2.0 + j) for j in range(max(k // 2, 2))]
    return np.concatenate(
        [m + 0.3 * rng.standard_normal((n_per_motif, p)) for m in motifs]
    )


def bench_clustering(quick: bool = False) -> dict:
    """Vectorized vs loop prototype refinement on one pinned fit."""
    from repro.core.clustering import ClusteringConfig, SegmentClusterer

    dims = _CLUSTER_QUICK if quick else _CLUSTER_FULL
    segments = _motif_segments(
        dims["segments_per_motif"], dims["segment_length"], dims["num_prototypes"]
    )
    config = ClusteringConfig(
        num_prototypes=dims["num_prototypes"],
        segment_length=dims["segment_length"],
        refine_steps=dims["refine_steps"],
        max_iters=dims["max_iters"],
        seed=0,
    )

    started = time.perf_counter()
    vectorized = SegmentClusterer(config).fit(segments)
    vectorized_s = time.perf_counter() - started

    started = time.perf_counter()
    loop = SegmentClusterer(dataclasses.replace(config, refine_impl="loop")).fit(segments)
    loop_s = time.perf_counter() - started

    max_abs_diff = float(np.abs(vectorized.prototypes_ - loop.prototypes_).max())
    return {
        "config": {**dims, "n_segments": len(segments)},
        "vectorized_s": round(vectorized_s, 4),
        "loop_s": round(loop_s, 4),
        "speedup": round(loop_s / vectorized_s, 2),
        "max_abs_diff": max_abs_diff,
        "equivalent_1e8": bool(max_abs_diff < 1e-8),
    }


def bench_protoattn(quick: bool = False) -> dict:
    """Cached vs recomputed C_Q projection during inference forwards."""
    from repro.core.protoattn import ProtoAttn

    dims = _ATTN_QUICK if quick else _ATTN_FULL
    rng = np.random.default_rng(3)
    layer = ProtoAttn(
        rng.standard_normal((dims["k"], dims["p"])), d_model=dims["d_model"]
    )
    layer.eval()
    segments = Tensor(
        rng.standard_normal((dims["batch"], dims["n_segments"], dims["p"]))
    )
    rounds = dims["rounds"]

    with ag.no_grad():
        layer(segments)  # warm both code paths once
        started = time.perf_counter()
        for _ in range(rounds):
            layer.invalidate_cache()
            layer(segments)
        uncached_ms = (time.perf_counter() - started) / rounds * 1e3

        layer(segments)  # prime the cache
        started = time.perf_counter()
        for _ in range(rounds):
            layer(segments)
        cached_ms = (time.perf_counter() - started) / rounds * 1e3

    return {
        "config": {key: dims[key] for key in ("k", "p", "d_model", "batch", "n_segments")},
        "rounds": rounds,
        "uncached_ms": round(uncached_ms, 4),
        "cached_ms": round(cached_ms, 4),
        "speedup": round(uncached_ms / cached_ms, 2),
    }


def bench_streaming(quick: bool = False) -> dict:
    """Ring-buffer observe throughput and forecast latency."""
    from repro.core.model import FOCUSConfig, FOCUSForecaster
    from repro.core.streaming import StreamingFOCUS

    dims = _STREAM_QUICK if quick else _STREAM_FULL
    rng = np.random.default_rng(11)
    config = FOCUSConfig(
        lookback=dims["lookback"],
        horizon=12,
        num_entities=dims["entities"],
        segment_length=dims["segment_length"],
        num_prototypes=dims["num_prototypes"],
        d_model=dims["d_model"],
        num_readout=2,
    )
    model = FOCUSForecaster(
        config,
        prototypes=rng.standard_normal(
            (dims["num_prototypes"], dims["segment_length"])
        ),
    )
    stream = StreamingFOCUS(model, adapt_prototypes=True)
    rows = rng.standard_normal((dims["steps"], dims["entities"]))

    started = time.perf_counter()
    for row in rows:
        stream.observe(row)
    observe_s = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(dims["forecasts"]):
        stream.forecast()
    forecast_ms = (time.perf_counter() - started) / dims["forecasts"] * 1e3

    return {
        "config": dict(dims),
        "observe_per_s": round(dims["steps"] / observe_s, 1),
        "observe_us": round(observe_s / dims["steps"] * 1e6, 2),
        "forecast_ms": round(forecast_ms, 3),
    }


def _build_step_fixture(dims: dict, dtype) -> tuple:
    """Seeded FOCUS model + AdamW + one pinned batch in ``dtype``."""
    from repro.core.model import FOCUSConfig, FOCUSForecaster
    from repro.nn import init as nn_init
    from repro.optim import AdamW

    rng = np.random.default_rng(5)
    with ag.default_dtype(dtype):
        nn_init.seed(0)
        config = FOCUSConfig(
            lookback=dims["lookback"],
            horizon=dims["horizon"],
            num_entities=dims["entities"],
            segment_length=dims["segment_length"],
            num_prototypes=dims["num_prototypes"],
            d_model=dims["d_model"],
            num_readout=2,
        )
        model = FOCUSForecaster(
            config,
            prototypes=rng.standard_normal(
                (dims["num_prototypes"], dims["segment_length"])
            ),
        )
    optimizer = AdamW(model.parameters(), lr=1e-3)
    x = Tensor(
        rng.standard_normal(
            (dims["batch"], dims["lookback"], dims["entities"])
        ).astype(dtype)
    )
    y = Tensor(
        rng.standard_normal(
            (dims["batch"], dims["horizon"], dims["entities"])
        ).astype(dtype)
    )
    return model, optimizer, x, y


def _one_step(model, optimizer, x, y, legacy: bool = False) -> None:
    """One full training step: forward, MSE, backward, clip, update."""
    from repro.optim import clip_grad_norm

    pred = model(x)
    loss = ((pred - y) ** 2.0).mean()
    optimizer.zero_grad()
    if legacy:
        with ag.legacy_accumulation():
            loss.backward()
    else:
        loss.backward()
    clip_grad_norm(optimizer.parameters, 5.0)
    optimizer.step()


def bench_training_step(quick: bool = False) -> dict:
    """Full fwd+bwd+step latency: float64 vs float32, and per-step
    engine allocation counts with the in-place vs legacy accumulation."""
    from repro.optim import AdamW
    from repro.profiling.profiler import track_allocations

    dims = _STEP_QUICK if quick else _STEP_FULL
    timings = {}
    for dtype in (np.float64, np.float32):
        model, optimizer, x, y = _build_step_fixture(dims, dtype)
        for _ in range(dims["warmup"]):
            _one_step(model, optimizer, x, y)
        started = time.perf_counter()
        for _ in range(dims["rounds"]):
            _one_step(model, optimizer, x, y)
        timings[np.dtype(dtype).name] = (
            (time.perf_counter() - started) / dims["rounds"] * 1e3
        )

    # Allocation counts (float64, steady state: scratch pools are warm).
    model, optimizer, x, y = _build_step_fixture(dims, np.float64)
    _one_step(model, optimizer, x, y)
    with track_allocations() as allocs:
        _one_step(model, optimizer, x, y)
    inplace_allocs, inplace_bytes = allocs.count, allocs.bytes

    model, optimizer, x, y = _build_step_fixture(dims, np.float64)
    optimizer = AdamW(model.parameters(), lr=1e-3, in_place=False)
    _one_step(model, optimizer, x, y, legacy=True)
    with track_allocations() as allocs:
        _one_step(model, optimizer, x, y, legacy=True)
    legacy_allocs, legacy_bytes = allocs.count, allocs.bytes

    return {
        "config": dict(dims),
        "float64_ms": round(timings["float64"], 3),
        "float32_ms": round(timings["float32"], 3),
        "speedup_fp32": round(timings["float64"] / timings["float32"], 2),
        "allocs_per_step_inplace": inplace_allocs,
        "allocs_per_step_legacy": legacy_allocs,
        "alloc_bytes_inplace": inplace_bytes,
        "alloc_bytes_legacy": legacy_bytes,
        "alloc_reduction": round(
            1.0 - inplace_allocs / legacy_allocs, 3
        ) if legacy_allocs else 0.0,
    }


def _one_step_guarded(model, optimizer, x, y, instruments) -> None:
    """The training step exactly as the trainer's hot loop now shapes it:
    one ``is not None`` guard (plus two clock reads when enabled)."""
    from repro.optim import clip_grad_norm

    step_started = time.perf_counter() if instruments is not None else 0.0
    pred = model(x)
    loss = ((pred - y) ** 2.0).mean()
    optimizer.zero_grad()
    loss.backward()
    clip_grad_norm(optimizer.parameters, 5.0)
    optimizer.step()
    if instruments is not None:
        instruments.record_step(loss.item(), time.perf_counter() - step_started)


def bench_telemetry(quick: bool = False) -> dict:
    """Instrumented-off vs instrumented-on training-step overhead on the
    pinned step config, plus JSONL run-log writer throughput.

    ``overhead_off_pct`` is the gate the CI telemetry job pins at <=2%:
    the cost of shipping the telemetry guard in the hot loop when no
    registry is attached, relative to the plain step.  Rounds of the
    three variants are interleaved and reduced by median so slow drift
    of the machine does not masquerade as overhead.
    """
    from repro.telemetry import (
        JsonlSink,
        MetricsRegistry,
        RunLogger,
        TrainingInstruments,
    )

    step_dims = _STEP_QUICK if quick else _STEP_FULL
    dims = _TELEM_QUICK if quick else _TELEM_FULL
    registry = MetricsRegistry()
    variants = {
        "baseline": (_one_step, None),
        "off": (_one_step_guarded, None),
        "on": (_one_step_guarded, TrainingInstruments(registry)),
    }
    fixtures = {
        name: _build_step_fixture(step_dims, np.float64) for name in variants
    }
    for name, (step, instruments) in variants.items():
        model, optimizer, x, y = fixtures[name]
        for _ in range(dims["warmup"]):
            if step is _one_step:
                step(model, optimizer, x, y)
            else:
                step(model, optimizer, x, y, instruments)
    times = {name: [] for name in variants}
    for _ in range(dims["rounds"]):
        for name, (step, instruments) in variants.items():
            model, optimizer, x, y = fixtures[name]
            started = time.perf_counter()
            if step is _one_step:
                step(model, optimizer, x, y)
            else:
                step(model, optimizer, x, y, instruments)
            times[name].append(time.perf_counter() - started)
    medians = {name: float(np.median(times[name])) * 1e3 for name in variants}

    # JSONL writer throughput: schema-validated epoch events to a temp file.
    with tempfile.TemporaryDirectory() as tmp:
        logger = RunLogger([JsonlSink(os.path.join(tmp, "events.jsonl"))])
        started = time.perf_counter()
        for index in range(dims["events"]):
            logger.event("epoch", epoch=index, train_loss=0.5, val_loss=0.6)
        writer_seconds = time.perf_counter() - started
        logger.close()

    return {
        "config": {**dims, "step": dict(step_dims)},
        "baseline_ms": round(medians["baseline"], 3),
        "off_ms": round(medians["off"], 3),
        "on_ms": round(medians["on"], 3),
        "overhead_off_pct": round(
            100.0 * (medians["off"] - medians["baseline"]) / medians["baseline"], 2
        ),
        "overhead_on_pct": round(
            100.0 * (medians["on"] - medians["baseline"]) / medians["baseline"], 2
        ),
        "events_per_s": round(dims["events"] / writer_seconds, 1),
    }


def bench_serving(quick: bool = False) -> dict:
    """Batched serving vs the sequential streaming loop on one fleet.

    A shared pinned FOCUS model serves a fleet of warmed entities.  The
    *sequential* baseline answers each entity with its own
    ``StreamingFOCUS.forecast()`` call (one forward per entity, exactly
    the pre-serving deployment story); the *batched* path answers the
    same requests through ``MicroBatcher`` in groups of 1/8/32 windows
    per forward, cache disabled so every request pays the model.  A
    final pass measures cache-on hit serving.  ``speedup_batch32``
    (batched throughput at 32 / sequential throughput) is the CI gate.
    """
    from repro.core.model import FOCUSConfig, FOCUSForecaster
    from repro.core.streaming import StreamingFOCUS
    from repro.serving import ForecastCache, ForecastServer, MicroBatcher, ServingConfig

    dims = _SERVE_QUICK if quick else _SERVE_FULL
    rng = np.random.default_rng(17)
    config = FOCUSConfig(
        lookback=dims["lookback"],
        horizon=dims["horizon"],
        num_entities=dims["entities"],
        segment_length=dims["segment_length"],
        num_prototypes=dims["num_prototypes"],
        d_model=dims["d_model"],
        num_readout=2,
    )
    model = FOCUSForecaster(
        config,
        prototypes=rng.standard_normal(
            (dims["num_prototypes"], dims["segment_length"])
        ),
    )
    model.eval()
    fleet = dims["fleet"]

    # Sequential baseline: one StreamingFOCUS per entity, warmed.
    streams = []
    server = ForecastServer(model, ServingConfig(max_batch=max(dims["batch_sizes"]),
                                                 use_cache=False))
    for index in range(fleet):
        history = rng.standard_normal((dims["lookback"], dims["entities"]))
        stream = StreamingFOCUS(model)
        stream.observe_many(history)
        streams.append(stream)
        server.observe_many(f"bench-{index}", history)
    entity_ids = [f"bench-{index}" for index in range(fleet)]

    def percentiles(samples: list[float]) -> tuple[float, float]:
        return (
            float(np.percentile(samples, 50)) * 1e3,
            float(np.percentile(samples, 99)) * 1e3,
        )

    for _ in range(dims["warmup"]):
        for stream in streams:
            stream.forecast()
    sequential_times = []
    for _ in range(dims["rounds"]):
        started = time.perf_counter()
        for stream in streams:
            stream.forecast()
        sequential_times.append(time.perf_counter() - started)
    seq_p50, seq_p99 = percentiles(sequential_times)
    seq_throughput = fleet / float(np.median(sequential_times))

    batched = {}
    for batch_size in dims["batch_sizes"]:
        batcher = MicroBatcher(model)
        groups = [
            entity_ids[start : start + batch_size]
            for start in range(0, fleet, batch_size)
        ]
        sessions = [
            [server.store.session(entity_id) for entity_id in group]
            for group in groups
        ]
        for _ in range(dims["warmup"]):
            for group in sessions:
                batcher.forecast_sessions(group)
        samples = []
        for _ in range(dims["rounds"]):
            started = time.perf_counter()
            for group in sessions:
                batcher.forecast_sessions(group)
            samples.append(time.perf_counter() - started)
        p50, p99 = percentiles(samples)
        batched[f"batch_{batch_size}"] = {
            "p50_ms": round(p50, 3),
            "p99_ms": round(p99, 3),
            "throughput_per_s": round(fleet / float(np.median(samples)), 1),
        }

    # Cache-on: every request after the first pass is a version-exact hit.
    cache = ForecastCache(capacity=4 * fleet)
    cached_batcher = MicroBatcher(model, cache=cache)
    all_sessions = [server.store.session(entity_id) for entity_id in entity_ids]
    cached_batcher.forecast_sessions(all_sessions)  # fill
    samples = []
    for _ in range(dims["rounds"]):
        started = time.perf_counter()
        cached_batcher.forecast_sessions(all_sessions)
        samples.append(time.perf_counter() - started)
    hit_p50, hit_p99 = percentiles(samples)
    speedup = batched["batch_32"]["throughput_per_s"] / round(seq_throughput, 1)

    return {
        "config": dict(dims),
        "sequential": {
            "p50_ms": round(seq_p50, 3),
            "p99_ms": round(seq_p99, 3),
            "throughput_per_s": round(seq_throughput, 1),
        },
        "batched": batched,
        "cache_on": {
            "p50_ms": round(hit_p50, 3),
            "p99_ms": round(hit_p99, 3),
            "throughput_per_s": round(fleet / float(np.median(samples)), 1),
            "hit_rate": round(cache.hit_rate, 4),
        },
        "speedup_batch32": round(speedup, 2),
        "meets_1_5x": bool(speedup >= 1.5),
    }


def bench_fleet(quick: bool = False) -> dict:
    """Sharded scatter-gather replay throughput vs shard count.

    One pinned multi-entity workload is replayed through fleets of
    1/2/4(/8) worker processes; per shard count the report records the
    per-request p50/p99 latency (worker batch wall clock per request)
    and whole-replay throughput.  The timed region is the scatter-gather
    replay only — fleet spawn/teardown is deployment cost, not serving
    cost.  ``scaling_4x`` is the 4-shard over 1-shard throughput ratio;
    the >=2.5x gate only has physical meaning with >=4 CPUs, so
    ``gate_active`` records whether this host can assert it.
    """
    from repro.core.model import FOCUSConfig, FOCUSForecaster
    from repro.serving import FleetConfig, ShardRouter, replay_fleet

    dims = _FLEET_QUICK if quick else _FLEET_FULL
    rng = np.random.default_rng(23)
    config = FOCUSConfig(
        lookback=dims["lookback"],
        horizon=dims["horizon"],
        num_entities=dims["entities"],
        segment_length=dims["segment_length"],
        num_prototypes=dims["num_prototypes"],
        d_model=dims["d_model"],
        num_readout=2,
    )
    model = FOCUSForecaster(
        config,
        prototypes=rng.standard_normal(
            (dims["num_prototypes"], dims["segment_length"])
        ),
    )
    model.eval()
    streams = {
        f"bench-{index}": rng.standard_normal((dims["steps"], dims["entities"]))
        for index in range(dims["fleet"])
    }

    per_shards = {}
    for shards in dims["shard_counts"]:
        fleet_config = FleetConfig(shards=shards, max_batch=dims["max_batch"])
        walls, all_latencies, counts = [], [], []
        with ShardRouter(model, fleet_config) as router:
            # round 0 is the warmup (workers touch every code path once);
            # later rounds keep ingesting fresh rows, so every forecast
            # still pays the model (new ring version -> no cache hit).
            for round_index in range(dims["rounds"] + 1):
                started = time.perf_counter()
                responses, latencies = replay_fleet(
                    router,
                    streams,
                    forecast_every=dims["forecast_every"],
                    with_latencies=True,
                )
                wall_s = time.perf_counter() - started
                if round_index == 0:
                    continue
                walls.append(wall_s)
                all_latencies.extend(latencies)
                counts.append(len(responses))
        per_shards[str(shards)] = {
            "responses": counts[0],
            "p50_ms": round(float(np.percentile(all_latencies, 50)), 3),
            "p99_ms": round(float(np.percentile(all_latencies, 99)), 3),
            "wall_s": round(float(np.median(walls)), 3),
            "throughput_per_s": round(counts[0] / float(np.median(walls)), 1),
        }

    counts = {entry["responses"] for entry in per_shards.values()}
    scaling = (
        per_shards["4"]["throughput_per_s"] / per_shards["1"]["throughput_per_s"]
        if "4" in per_shards
        else 0.0
    )
    cpu_count = os.cpu_count() or 1
    gate_active = cpu_count >= 4
    return {
        "config": dict(dims),
        "cpu_count": cpu_count,
        "shards": per_shards,
        "consistent_response_counts": len(counts) == 1,
        "scaling_4x": round(scaling, 2),
        "gate": FLEET_SCALING_GATE,
        "gate_active": gate_active,
        "meets_scaling_gate": bool(scaling >= FLEET_SCALING_GATE),
    }


def bench_fleet_observability(quick: bool = False) -> dict:
    """Cost of arming the observability plane on the serving hot path.

    Two identical single-process servers answer the same warmed fleet
    through ``forecast_many`` — one with telemetry off, one with request
    tracing, the SLO monitor, and a metrics registry all live (run
    logger off: JSONL write cost is the telemetry section's concern).
    The two modes run back-to-back within every round (order
    alternating round to round), and ``overhead_pct`` is the *median of
    the per-round paired ratios*: CPU frequency drift over the run
    cancels inside each adjacent pair, and the median discards the
    rounds where the scheduler hit one mode; it is the CI gate at <=3%.
    The reported ms/throughput figures use the per-mode minimum (noise
    on a shared box is strictly additive, so the fastest round is the
    honest cost).
    A second loop times one full fleet metrics-aggregation cycle —
    registry snapshot, per-shard ingest, shard-labelled merge — at the
    pinned shard count (``aggregate_ms``), the per-cycle cost of the
    router's background aggregation cadence.
    """
    from repro.core.model import FOCUSConfig, FOCUSForecaster
    from repro.serving import ForecastServer, ServingConfig
    from repro.telemetry import (
        FleetAggregator,
        MetricsRegistry,
        SloConfig,
        registry_snapshot,
    )

    dims = _OBS_QUICK if quick else _OBS_FULL
    rng = np.random.default_rng(29)
    config = FOCUSConfig(
        lookback=dims["lookback"],
        horizon=dims["horizon"],
        num_entities=dims["entities"],
        segment_length=dims["segment_length"],
        num_prototypes=dims["num_prototypes"],
        d_model=dims["d_model"],
        num_readout=2,
    )
    model = FOCUSForecaster(
        config,
        prototypes=rng.standard_normal(
            (dims["num_prototypes"], dims["segment_length"])
        ),
    )
    model.eval()
    fleet = dims["fleet"]
    registry = MetricsRegistry()
    # Cache off so every request pays the model in both variants; a
    # generous p99 objective keeps the SLO monitor evaluating without
    # ever flapping health during the measurement.
    servers = {
        "off": ForecastServer(
            model, ServingConfig(max_batch=dims["max_batch"], use_cache=False)
        ),
        "on": ForecastServer(
            model,
            ServingConfig(
                max_batch=dims["max_batch"], use_cache=False, trace=True,
                slo=SloConfig(latency_p99_ms=1e9, window=128,
                              min_samples=16, evaluate_every=16),
            ),
            telemetry=registry,
        ),
    }
    entity_ids = [f"bench-{index}" for index in range(fleet)]
    for server in servers.values():
        for index, entity_id in enumerate(entity_ids):
            history = np.random.default_rng(index).standard_normal(
                (dims["lookback"], dims["entities"])
            )
            server.observe_many(entity_id, history)
    for _ in range(dims["warmup"]):
        for server in servers.values():
            server.forecast_many(entity_ids)
    times = {name: [] for name in servers}
    # GC pauses land in whichever round triggers them and would be
    # mis-billed as tracing overhead; collect once, then hold it off
    # for the (short) measurement window.
    import gc

    reps = dims["reps"]
    gc.collect()
    gc.disable()
    try:
        for round_index in range(dims["rounds"]):
            # Alternate within-round order so neither mode always runs
            # with the warmer caches / later frequency state.  Each
            # timed window covers `reps` calls: a single ~10ms call is
            # at the mercy of one scheduler preemption (+-50% on that
            # round), while a longer window dilutes it.
            order = list(servers.items())
            if round_index % 2:
                order.reverse()
            for name, server in order:
                started = time.perf_counter()
                for _ in range(reps):
                    server.forecast_many(entity_ids)
                times[name].append((time.perf_counter() - started) / reps)
    finally:
        gc.enable()
    best = {name: float(np.min(times[name])) * 1e3 for name in servers}
    ratios = np.asarray(times["on"]) / np.asarray(times["off"])
    overhead_pct = 100.0 * (float(np.median(ratios)) - 1.0)

    # One aggregation cycle over agg_shards copies of the live registry.
    snapshot = registry_snapshot(registry)
    shards = list(range(dims["agg_shards"]))
    samples = []
    merged_series = 0
    for _ in range(dims["agg_rounds"]):
        started = time.perf_counter()
        aggregator = FleetAggregator()
        for shard in shards:
            aggregator.ingest(shard, registry_snapshot(registry))
        merged_series = len(aggregator.merged().collect())
        samples.append(time.perf_counter() - started)

    return {
        "config": dict(dims),
        "off_ms": round(best["off"], 3),
        "on_ms": round(best["on"], 3),
        "off_per_s": round(fleet / (best["off"] / 1e3), 1),
        "on_per_s": round(fleet / (best["on"] / 1e3), 1),
        "overhead_pct": round(overhead_pct, 2),
        "gate_pct": OBSERVABILITY_OVERHEAD_GATE_PCT,
        "meets_overhead_gate": bool(
            overhead_pct <= OBSERVABILITY_OVERHEAD_GATE_PCT
        ),
        "aggregate_ms": round(float(np.median(samples)) * 1e3, 3),
        "aggregate_shards": dims["agg_shards"],
        "merged_series": merged_series,
        "snapshot_instruments": len(snapshot["instruments"]),
    }


def bench_plan_engine(quick: bool = False) -> dict:
    """Compiled execution-plan replay vs the eager forward.

    One pinned FOCUS model answers identical ``forecast_batch`` calls
    through both engines, no cache anywhere in the loop, best-of-rounds
    timing.  The two engines' outputs are asserted bit-identical before
    anything is timed (the plan compiler additionally self-checks every
    trace).  The gate — ``speedup_uncached >= PLAN_SPEEDUP_GATE`` — is
    evaluated on the single-window (B=1) latency path, where per-op
    Python dispatch dominates the eager forward; larger batches shift
    time into numpy kernels both engines share and are reported
    informationally.
    """
    from repro.core.model import FOCUSConfig, FOCUSForecaster
    from repro.nn import init as nn_init

    dims = _PLAN_QUICK if quick else _PLAN_FULL
    nn_init.seed(0)
    rng = np.random.default_rng(23)
    config = FOCUSConfig(
        lookback=dims["lookback"],
        horizon=dims["horizon"],
        num_entities=dims["entities"],
        segment_length=dims["segment_length"],
        num_prototypes=dims["num_prototypes"],
        d_model=dims["d_model"],
        num_readout=2,
    )
    model = FOCUSForecaster(
        config,
        prototypes=rng.standard_normal(
            (dims["num_prototypes"], dims["segment_length"])
        ),
    )
    model.eval()

    batches = {}
    build_ms = None
    for batch in dims["batch_sizes"]:
        windows = rng.standard_normal(
            (batch, dims["lookback"], dims["entities"])
        )
        eager = model.forecast_batch(windows, engine="eager")
        started = time.perf_counter()
        planned = model.forecast_batch(windows, engine="plan")
        traced_in = time.perf_counter() - started
        if build_ms is None:
            build_ms = round(traced_in * 1e3, 3)
        if not np.array_equal(eager, planned, equal_nan=True):
            raise RuntimeError(
                f"plan engine diverged from eager at batch {batch}"
            )
        best = {}
        for engine in ("eager", "plan"):
            for _ in range(dims["warmup"]):
                model.forecast_batch(windows, engine=engine)
            fastest = float("inf")
            for _ in range(dims["rounds"]):
                started = time.perf_counter()
                for _ in range(dims["reps"]):
                    model.forecast_batch(windows, engine=engine)
                fastest = min(
                    fastest, (time.perf_counter() - started) / dims["reps"]
                )
            best[engine] = fastest
        batches[str(batch)] = {
            "eager_ms": round(best["eager"] * 1e3, 4),
            "plan_ms": round(best["plan"] * 1e3, 4),
            "speedup": round(best["eager"] / best["plan"], 2),
        }

    stats = model.plan_stats()
    gate_speedup = batches[str(dims["batch_sizes"][0])]["speedup"]
    return {
        "dims": {k: v for k, v in dims.items() if k != "batch_sizes"},
        "batch_sizes": list(dims["batch_sizes"]),
        "build_ms": build_ms,
        "plan_ops": stats.num_ops,
        "plan_folded": stats.num_folded,
        "plan_buffers": stats.num_buffers,
        "arena_kb": round(stats.arena_bytes / 1024.0, 1),
        "batches": batches,
        "bitwise_equal": True,
        "speedup_uncached": gate_speedup,
        "gate": PLAN_SPEEDUP_GATE,
        "meets_plan_gate": bool(gate_speedup >= PLAN_SPEEDUP_GATE),
    }


def run_benchmarks(quick: bool = False) -> dict:
    """Run all hot-path benchmarks; returns the report dict."""
    return {
        "schema": SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "clustering_fit": bench_clustering(quick),
        "protoattn_forward": bench_protoattn(quick),
        "streaming": bench_streaming(quick),
        "training_step": bench_training_step(quick),
        "telemetry": bench_telemetry(quick),
        "serving": bench_serving(quick),
        "fleet": bench_fleet(quick),
        "fleet_observability": bench_fleet_observability(quick),
        "plan_engine": bench_plan_engine(quick),
    }


def write_report(report: dict, path: str) -> None:
    """Serialize a benchmark report as indented JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
