"""Analytic efficiency accounting: FLOPs, activation memory, parameters.

The paper (Sec. VIII-A) deliberately reports platform-independent
efficiency metrics — inference FLOPs, peak memory, and parameter count —
"to minimize the impact of varying deep learning platforms".  This
package computes the same three quantities for any ``repro.nn`` model by
observing every autograd op during a forward pass, so no per-model
instrumentation is needed.
"""

from repro.profiling.bench import run_benchmarks, write_report
from repro.profiling.counter import OpCounter, ProfileReport, count_ops, profile_model
from repro.profiling.profiler import (
    AllocationCounter,
    OpProfiler,
    profile_ops,
    track_allocations,
)

__all__ = [
    "AllocationCounter",
    "OpCounter",
    "OpProfiler",
    "ProfileReport",
    "count_ops",
    "profile_model",
    "profile_ops",
    "run_benchmarks",
    "track_allocations",
    "write_report",
]
