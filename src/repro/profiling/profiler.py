"""Wall-clock op profiling and engine allocation tracking.

Two observers complement the analytic :class:`~repro.profiling.counter.
OpCounter`:

- :class:`OpProfiler` hooks the same ``set_op_observer`` channel but
  measures *wall clock*: the time between consecutive op constructions is
  attributed to the op that just finished, giving a per-op latency table
  for real forward passes.  Setting ``wants_backward`` makes the backward
  pass report one ``"<op>.bwd"`` event per interior node, so backward
  time is attributed too.
- :class:`AllocationCounter` hooks ``set_alloc_observer`` and counts the
  gradient/optimizer buffers the engine allocates — the quantity the
  in-place backward/optimizer work drives toward zero.

Use :func:`profile_ops` / :func:`track_allocations` as context managers::

    with profile_ops() as prof:
        loss = model(x).sum()
        loss.backward()
    print(prof.table())
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from collections import defaultdict

import numpy as np

from repro.autograd.tensor import (
    get_alloc_observer,
    get_op_observer,
    set_alloc_observer,
    set_op_observer,
)


@dataclasses.dataclass
class OpStats:
    """Accumulated wall-clock statistics for one op name."""

    calls: int = 0
    seconds: float = 0.0
    bytes: int = 0

    @property
    def mean_us(self) -> float:
        return 1e6 * self.seconds / self.calls if self.calls else 0.0


class OpProfiler:
    """Attribute wall-clock time to autograd ops as they are constructed.

    The engine reports an op *after* computing its output, so the time
    elapsed since the previous report is (to good approximation on this
    single-threaded engine) the cost of the op just finished, plus any
    non-op Python in between.  Call :meth:`mark` when entering a profiled
    region so the first op is not charged for unrelated setup, and
    :meth:`note` to close out a named non-op region (e.g. the optimizer
    step).
    """

    wants_backward = True  # also receive "<op>.bwd" events from backward()

    def __init__(self):
        self.stats: defaultdict[str, OpStats] = defaultdict(OpStats)
        self._last = time.perf_counter()

    def mark(self) -> None:
        """Reset the attribution clock (start of a profiled region)."""
        self._last = time.perf_counter()

    def __call__(self, op_name: str, out_shape, parent_shapes, dtype=None) -> None:
        now = time.perf_counter()
        entry = self.stats[op_name]
        entry.calls += 1
        entry.seconds += now - self._last
        out_elems = int(np.prod(out_shape)) if out_shape else 1
        itemsize = np.dtype(dtype).itemsize if dtype is not None else 8
        entry.bytes += out_elems * itemsize
        self._last = now

    def note(self, label: str) -> None:
        """Attribute the time since the last event to a named region."""
        now = time.perf_counter()
        entry = self.stats[label]
        entry.calls += 1
        entry.seconds += now - self._last
        self._last = now

    @property
    def total_seconds(self) -> float:
        return sum(entry.seconds for entry in self.stats.values())

    def rows(self) -> list[dict]:
        """Per-op records sorted by total time, descending."""
        total = self.total_seconds or 1.0
        return [
            {
                "op": name,
                "calls": entry.calls,
                "total_ms": 1e3 * entry.seconds,
                "mean_us": entry.mean_us,
                "share": entry.seconds / total,
                "bytes": entry.bytes,
            }
            for name, entry in sorted(
                self.stats.items(), key=lambda kv: -kv[1].seconds
            )
        ]

    def table(self, top: int | None = None) -> str:
        """Human-readable sorted table (``repro profile --ops``)."""
        rows = self.rows()
        if top is not None:
            rows = rows[:top]
        lines = [
            f"{'op':<20s} {'calls':>7s} {'total ms':>10s} {'mean us':>10s} "
            f"{'share':>7s} {'MB out':>8s}"
        ]
        for row in rows:
            lines.append(
                f"{row['op']:<20s} {row['calls']:>7d} {row['total_ms']:>10.3f} "
                f"{row['mean_us']:>10.2f} {row['share']:>6.1%} "
                f"{row['bytes'] / 2**20:>8.2f}"
            )
        return "\n".join(lines)


@contextlib.contextmanager
def profile_ops():
    """Context manager installing an :class:`OpProfiler` for the block."""
    profiler = OpProfiler()
    previous = get_op_observer()
    set_op_observer(profiler)
    profiler.mark()
    try:
        yield profiler
    finally:
        set_op_observer(previous)


class AllocationCounter:
    """Counts engine-owned buffer allocations (backward + optimizer)."""

    def __init__(self):
        self.count = 0
        self.bytes = 0

    def __call__(self, nbytes: int) -> None:
        self.count += 1
        self.bytes += nbytes

    def reset(self) -> None:
        self.count = 0
        self.bytes = 0


@contextlib.contextmanager
def track_allocations():
    """Context manager yielding an active :class:`AllocationCounter`."""
    counter = AllocationCounter()
    previous = get_alloc_observer()
    set_alloc_observer(counter)
    try:
        yield counter
    finally:
        set_alloc_observer(previous)
