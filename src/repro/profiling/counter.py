"""Op-level FLOPs and activation-memory counting.

:class:`OpCounter` installs itself as the autograd op observer; every
tensor operation reports its name, output shape, and parent shapes, from
which FLOPs are derived:

- ``matmul``: ``2 * prod(out) * inner_dim`` (multiply-accumulate pairs);
- ``conv1d``: ``2 * prod(out) * C_in * K``;
- ``softmax`` and friends: a small constant times the element count;
- elementwise ops: one FLOP per output element.

"Activation memory" sums the bytes of every op output produced during
the observed region.  Because this engine retains all activations for
the backward pass, that sum is the faithful analog of the paper's
inference peak-memory metric (intermediate-result storage).  Assignment
search inside ProtoAttn and other pure-numpy computations report
themselves through :meth:`OpCounter.add_flops`.
"""

from __future__ import annotations

import contextlib
import dataclasses
from collections import defaultdict

import numpy as np

from repro.autograd.tensor import get_op_observer, set_op_observer
from repro.autograd import Tensor, no_grad

_BYTES_PER_ELEMENT = 8  # fallback when an op reports no dtype (float64)

# Elementwise cost multipliers for transcendental-ish ops; everything not
# listed costs 1 FLOP per output element.
_ELEMENTWISE_COST = {
    "exp": 4,
    "log": 4,
    "sqrt": 2,
    "tanh": 6,
    "sigmoid": 5,
    "gelu": 8,
    "silu": 6,
    "erf": 8,
    "softplus": 6,
    "softmax": 5,
    "log_softmax": 6,
    "logsumexp": 6,
}

# Pure data-movement ops: zero FLOPs (memory is still counted).
_FREE_OPS = {
    "reshape",
    "transpose",
    "swapaxes",
    "squeeze",
    "unsqueeze",
    "broadcast_to",
    "getitem",
    "split",
    "pad",
    "gather",
    "stack",
    "concat",
    "repeat",
    "leaf",
}


def _op_flops(op_name: str, out_shape: tuple, parent_shapes: list[tuple]) -> int:
    out_elems = int(np.prod(out_shape)) if out_shape else 1
    if op_name == "matmul":
        if len(parent_shapes) >= 1 and parent_shapes[0]:
            inner = parent_shapes[0][-1]
        else:
            inner = 1
        return 2 * out_elems * int(inner)
    if op_name == "conv1d":
        # parents: x (B, C_in, L), weight (O, C_in, K)[, bias]
        if len(parent_shapes) >= 2 and len(parent_shapes[1]) == 3:
            _, c_in, kernel = parent_shapes[1]
            return 2 * out_elems * int(c_in) * int(kernel)
        return 2 * out_elems
    if op_name == "outer":
        return out_elems
    if op_name in _FREE_OPS:
        return 0
    if op_name in ("sum", "mean", "max", "min", "var"):
        parent_elems = (
            int(np.prod(parent_shapes[0])) if parent_shapes and parent_shapes[0] else out_elems
        )
        return parent_elems
    return _ELEMENTWISE_COST.get(op_name, 1) * out_elems


@dataclasses.dataclass
class ProfileReport:
    """Efficiency accounting result for one forward pass."""

    flops: int
    activation_bytes: int
    parameter_count: int
    per_op_flops: dict[str, int]

    @property
    def mflops(self) -> float:
        return self.flops / 1e6

    @property
    def activation_mb(self) -> float:
        return self.activation_bytes / 2**20

    @property
    def parameter_k(self) -> float:
        return self.parameter_count / 1e3

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FLOPs {self.mflops:.2f}M | activation {self.activation_mb:.2f}MB | "
            f"params {self.parameter_k:.1f}K"
        )


class OpCounter:
    """Collects FLOPs and activation bytes while installed as observer."""

    def __init__(self):
        self.flops = 0
        self.activation_bytes = 0
        self.per_op_flops: defaultdict[str, int] = defaultdict(int)

    def __call__(
        self, op_name: str, out_shape: tuple, parent_shapes: list[tuple], dtype=None
    ) -> None:
        flops = _op_flops(op_name, out_shape, parent_shapes)
        self.flops += flops
        self.per_op_flops[op_name] += flops
        out_elems = int(np.prod(out_shape)) if out_shape else 1
        itemsize = np.dtype(dtype).itemsize if dtype is not None else _BYTES_PER_ELEMENT
        self.activation_bytes += out_elems * itemsize

    def add_flops(self, amount: int, label: str = "external") -> None:
        """Record FLOPs done outside the autograd graph (numpy code)."""
        self.flops += int(amount)
        self.per_op_flops[label] += int(amount)


@contextlib.contextmanager
def count_ops():
    """Context manager yielding an active :class:`OpCounter`."""
    counter = OpCounter()
    previous = get_op_observer()
    set_op_observer(counter)
    try:
        yield counter
    finally:
        set_op_observer(previous)


def active_counter() -> OpCounter | None:
    """The currently-installed counter, if any (for numpy-side reporting)."""
    observer = get_op_observer()
    return observer if isinstance(observer, OpCounter) else None


def profile_model(model, input_shape: tuple[int, ...], seed: int = 0) -> ProfileReport:
    """Run one no-grad forward pass on random input and account for it.

    ``input_shape`` is the full input shape including the batch axis,
    e.g. ``(1, L, N)`` for forecasters.
    """
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal(input_shape))
    model.eval()
    with no_grad():
        with count_ops() as counter:
            model(x)
    return ProfileReport(
        flops=counter.flops,
        activation_bytes=counter.activation_bytes,
        parameter_count=model.num_parameters(),
        per_op_flops=dict(counter.per_op_flops),
    )
