"""Serving-path health tracking and input guardrails.

Two pieces used by :class:`repro.core.streaming.StreamingFOCUS`:

- :class:`HealthMonitor` — a three-state machine
  (``HEALTHY → DEGRADED → FAILED``) driven by per-forecast outcomes.
  Any model failure degrades a healthy stream immediately; a streak of
  ``fail_threshold`` consecutive failures marks it failed; recovery
  climbs back one rung at a time (``FAILED → DEGRADED`` on the first
  success, ``DEGRADED → HEALTHY`` after ``recover_after`` consecutive
  successes).
- :func:`apply_nan_policy` — the ingestion guard that decides what to
  do with non-finite observations before they reach the ring buffer.
"""

from __future__ import annotations

import enum
from collections import deque

import numpy as np

NAN_POLICIES = ("reject", "impute_last", "impute_prototype")


class HealthState(str, enum.Enum):
    """Coarse serving-health states exposed for monitoring."""

    HEALTHY = "HEALTHY"
    DEGRADED = "DEGRADED"
    FAILED = "FAILED"


class HealthMonitor:
    """Streak-driven state machine over per-forecast success/failure.

    Every :meth:`record_success` / :meth:`record_failure` advances a
    monotonic ``tick``; state changes are kept as a bounded history of
    ``(from, to, reason, tick)`` tuples in :attr:`transitions` (newest
    last, capped at ``history`` entries) instead of overwriting a single
    reason string.  ``on_transition(from, to, reason, tick)`` lets a
    telemetry layer observe changes as they happen.
    """

    def __init__(
        self,
        fail_threshold: int = 5,
        recover_after: int = 3,
        history: int = 256,
        on_transition=None,
    ):
        if fail_threshold < 1:
            raise ValueError("fail_threshold must be at least 1")
        if recover_after < 1:
            raise ValueError("recover_after must be at least 1")
        if history < 1:
            raise ValueError("history must be at least 1")
        self.fail_threshold = fail_threshold
        self.recover_after = recover_after
        self.state = HealthState.HEALTHY
        self.transitions: deque[tuple[str, str, str, int]] = deque(maxlen=history)
        self.on_transition = on_transition
        self.tick = 0
        self._fail_streak = 0
        self._ok_streak = 0

    def _set(self, state: HealthState, reason: str) -> None:
        if state is not self.state:
            record = (self.state.value, state.value, reason, self.tick)
            self.transitions.append(record)
            self.state = state
            if self.on_transition is not None:
                self.on_transition(*record)

    def record_success(self) -> HealthState:
        self.tick += 1
        self._fail_streak = 0
        self._ok_streak += 1
        if self.state is HealthState.FAILED:
            self._set(HealthState.DEGRADED, "first success after failure")
        elif self.state is HealthState.DEGRADED and self._ok_streak >= self.recover_after:
            self._set(HealthState.HEALTHY, f"{self._ok_streak} consecutive successes")
        return self.state

    def record_failure(self, reason: str = "model failure") -> HealthState:
        self.tick += 1
        self._ok_streak = 0
        self._fail_streak += 1
        if self.state is HealthState.HEALTHY:
            self._set(HealthState.DEGRADED, reason)
        elif (
            self.state is HealthState.DEGRADED
            and self._fail_streak >= self.fail_threshold
        ):
            self._set(
                HealthState.FAILED, f"{self._fail_streak} consecutive failures"
            )
        return self.state


def apply_nan_policy(
    block: np.ndarray,
    policy: str,
    last_row: np.ndarray | None = None,
    fill_value: float = 0.0,
) -> tuple[np.ndarray, int, int]:
    """Guard a ``(T, N)`` block of observations against non-finite values.

    Returns ``(clean_block, imputed_values, rejected_rows)`` where
    ``clean_block`` contains only finite values:

    - ``"reject"`` — drop every row containing a non-finite entry;
    - ``"impute_last"`` — forward-fill each bad entry from the most
      recent finite value of the same entity (seeded by ``last_row``,
      the last row already in the buffer; ``fill_value`` when there is
      no history yet);
    - ``"impute_prototype"`` — replace bad entries with ``fill_value``
      (the caller passes the prototype-dictionary mean).

    The fast path (fully finite block) returns the input unchanged.
    """
    if policy not in NAN_POLICIES:
        raise ValueError(f"unknown NaN policy {policy!r}; choose from {NAN_POLICIES}")
    finite = np.isfinite(block)
    if finite.all():
        return block, 0, 0
    if policy == "reject":
        keep = finite.all(axis=1)
        return block[keep], 0, int((~keep).sum())
    clean = block.copy()
    bad_total = int((~finite).sum())
    if policy == "impute_prototype":
        clean[~finite] = fill_value
        return clean, bad_total, 0
    # impute_last: per-entity forward fill, seeded by the buffer's last row.
    previous = (
        np.full(block.shape[1], fill_value, dtype=block.dtype)
        if last_row is None
        else np.where(np.isfinite(last_row), last_row, fill_value)
    )
    for t in range(len(clean)):
        bad = ~finite[t]
        if bad.any():
            clean[t, bad] = previous[bad]
        previous = clean[t]
    return clean, bad_total, 0
