"""Fault tolerance for both phases of the system.

- :mod:`repro.robustness.checkpoint` — atomic, checksummed training
  checkpoints with retention and corrupt-file fallback;
- :mod:`repro.robustness.health` — the serving health state machine
  and non-finite-input guardrails;
- :mod:`repro.robustness.fallback` — model-free degraded-mode
  forecasts (persistence, seasonal-naive);
- :mod:`repro.robustness.chaos` — deterministic fault injection used
  by the recovery test suite.
"""

from repro.robustness.chaos import (
    ChaosError,
    ChaosModel,
    ChaosSpec,
    corrupt_file,
    truncate_file,
)
from repro.robustness.checkpoint import (
    CheckpointCorruptionError,
    CheckpointManager,
    state_checksum,
)
from repro.robustness.fallback import (
    FALLBACKS,
    persistence_forecast,
    seasonal_naive_forecast,
)
from repro.robustness.health import (
    NAN_POLICIES,
    HealthMonitor,
    HealthState,
    apply_nan_policy,
)

__all__ = [
    "ChaosError",
    "ChaosModel",
    "ChaosSpec",
    "corrupt_file",
    "truncate_file",
    "CheckpointCorruptionError",
    "CheckpointManager",
    "state_checksum",
    "FALLBACKS",
    "persistence_forecast",
    "seasonal_naive_forecast",
    "NAN_POLICIES",
    "HealthMonitor",
    "HealthState",
    "apply_nan_policy",
]
