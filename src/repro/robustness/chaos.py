"""Deterministic fault injection for tests and resilience drills.

:class:`ChaosModel` wraps any :class:`~repro.nn.Module` and injects
faults on a fixed call schedule — NaN outputs, raised exceptions,
output amplification (loss spikes), and artificial latency.  Because
the schedule is a pure function of the forward-call counter, every
injection sequence is exactly reproducible, which is what lets the
test suite assert recovery paths batch by batch.

:func:`corrupt_file` / :func:`truncate_file` damage checkpoint archives
on disk (deterministic byte flips / truncation) to exercise the
checksum and fallback logic of
:class:`~repro.robustness.checkpoint.CheckpointManager`.
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np

from repro.autograd import Tensor
from repro.nn import Module


class ChaosError(RuntimeError):
    """The exception type raised by scheduled failure injection."""


@dataclasses.dataclass
class ChaosSpec:
    """Injection schedule, expressed in forward-call indices (1-based).

    A fault fires on call ``c`` when the window ``start_after < c``
    (and ``c <= stop_after`` if set) is active and ``c`` is a multiple
    of the corresponding ``*_every`` period.  ``0`` disables a channel.
    """

    nan_every: int = 0
    fail_every: int = 0
    spike_every: int = 0
    spike_scale: float = 1e6
    latency_every: int = 0
    latency_s: float = 0.0
    # Hang fault: sleep ``hang_seconds`` and then *raise* — a wedged
    # dependency that eventually errors out.  Unlike the latency fault
    # (which completes normally), a hang is meant to outlive the
    # caller's timeout budget, exercising abandon-and-retry paths such
    # as the maintenance refit timeout.
    hang_every: int = 0
    hang_seconds: float = 0.0
    start_after: int = 0
    stop_after: int | None = None

    def active(self, call: int) -> bool:
        if call <= self.start_after:
            return False
        return self.stop_after is None or call <= self.stop_after

    def fires(self, period: int, call: int) -> bool:
        return bool(period) and self.active(call) and call % period == 0


class ChaosModel(Module):
    """Transparent fault-injecting wrapper around a model.

    Delegates every attribute it does not define to the wrapped model
    (``config``, ``update_prototype``, …), so it can stand in wherever
    the real model is expected — e.g. inside
    :class:`~repro.core.streaming.StreamingFOCUS` or a
    :class:`~repro.training.Trainer`.
    """

    def __init__(self, model: Module, spec: ChaosSpec):
        super().__init__()
        self.inner = model
        self.spec = spec
        self.calls = 0
        self.injected_nans = 0
        self.injected_failures = 0
        self.injected_spikes = 0
        self.injected_latencies = 0
        self.injected_hangs = 0
        # (call_index, kind) pairs, for asserting schedule determinism.
        self.injection_log: list[tuple[int, str]] = []

    def __getattr__(self, name: str):
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    def forward(self, *args, **kwargs):
        self.calls += 1
        call = self.calls
        spec = self.spec
        if spec.fires(spec.latency_every, call):
            self.injected_latencies += 1
            self.injection_log.append((call, "latency"))
            time.sleep(spec.latency_s)
        if spec.fires(spec.hang_every, call):
            self.injected_hangs += 1
            self.injection_log.append((call, "hang"))
            time.sleep(spec.hang_seconds)
            raise ChaosError(f"injected hang on call {call} "
                             f"({spec.hang_seconds}s, then failed)")
        if spec.fires(spec.fail_every, call):
            self.injected_failures += 1
            self.injection_log.append((call, "fail"))
            raise ChaosError(f"injected failure on call {call}")
        out = self.inner(*args, **kwargs)
        if spec.fires(spec.nan_every, call):
            self.injected_nans += 1
            self.injection_log.append((call, "nan"))
            return Tensor(np.full_like(np.asarray(out.data), np.nan))
        if spec.fires(spec.spike_every, call):
            self.injected_spikes += 1
            self.injection_log.append((call, "spike"))
            return out * spec.spike_scale
        return out


# ----------------------------------------------------------------------
# Checkpoint-file corruption helpers
# ----------------------------------------------------------------------
def corrupt_file(path: str | os.PathLike, n_bytes: int = 64, seed: int = 0) -> int:
    """XOR-flip ``n_bytes`` deterministic positions in ``path``.

    Offsets avoid the first 16 bytes so the file still *looks* like a
    zip archive — exercising the checksum, not just the zip parser.
    Returns the number of bytes flipped.
    """
    rng = np.random.default_rng(seed)
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size <= 16:
            raise ValueError(f"{path} too small to corrupt ({size} bytes)")
        offsets = rng.integers(16, size, size=min(n_bytes, size - 16))
        for offset in offsets:
            handle.seek(int(offset))
            byte = handle.read(1)
            handle.seek(int(offset))
            handle.write(bytes([byte[0] ^ 0xFF]))
    return len(offsets)


def truncate_file(path: str | os.PathLike, keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` to ``keep_fraction`` of its size (crash mid-write).

    Returns the new size in bytes.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must lie in [0, 1)")
    size = os.path.getsize(path)
    new_size = int(size * keep_fraction)
    os.truncate(path, new_size)
    return new_size
