"""Crash-safe training checkpoints.

A checkpoint is a single ``.npz`` archive holding flat ndarrays (model
parameters, optimizer moments) plus a JSON metadata entry (epoch
counters, learning rate, RNG states, training history).  Three
guarantees make it production-safe:

- **Atomicity** — the archive is written to a temporary file in the
  same directory and moved into place with :func:`os.replace`, so a
  crash mid-write never leaves a half-written checkpoint under the
  final name.
- **Corruption detection** — a SHA-256 checksum over every entry is
  stored inside the archive; :meth:`CheckpointManager.load` recomputes
  and compares it, raising :class:`CheckpointCorruptionError` on any
  mismatch (bit flips, truncation, bad zip).
- **Retention with fallback** — only the newest ``keep`` checkpoints
  are kept on disk, and :meth:`CheckpointManager.load_latest` walks
  from newest to oldest, skipping corrupt files, so a corrupted final
  checkpoint degrades to the previous good one instead of killing the
  resume.
"""

from __future__ import annotations

import hashlib
import os
import re
from pathlib import Path

import numpy as np

CHECKSUM_KEY = "__checksum__"
_FILENAME_RE = re.compile(r"^ckpt_epoch(\d{6})\.npz$")


class CheckpointCorruptionError(RuntimeError):
    """Raised when a checkpoint fails its integrity check."""


def state_checksum(arrays: dict[str, np.ndarray]) -> str:
    """Deterministic SHA-256 over a flat dict of ndarrays.

    Covers names, dtypes, shapes, and raw bytes, so any corruption of
    the stored payload changes the digest.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(value.tobytes())
    return digest.hexdigest()


class CheckpointManager:
    """Atomic, checksummed, retained-last-N checkpoint files.

    The manager is payload-agnostic: it stores whatever flat dict of
    ndarrays the caller hands it (the :class:`~repro.training.Trainer`
    packs model/optimizer/RNG/history state into one).
    """

    def __init__(self, directory: str | os.PathLike, keep: int = 3):
        if keep < 1:
            raise ValueError("keep must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, epoch: int) -> Path:
        return self.directory / f"ckpt_epoch{epoch:06d}.npz"

    def list_checkpoints(self) -> list[tuple[int, Path]]:
        """All checkpoint files present, sorted oldest to newest."""
        found = []
        for path in self.directory.iterdir():
            match = _FILENAME_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found)

    def has_checkpoint(self) -> bool:
        return bool(self.list_checkpoints())

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def save(self, arrays: dict[str, np.ndarray], epoch: int) -> Path:
        """Atomically write one checkpoint and prune old ones."""
        if CHECKSUM_KEY in arrays:
            raise ValueError(f"{CHECKSUM_KEY!r} is a reserved entry name")
        payload = {name: np.asarray(value) for name, value in arrays.items()}
        payload[CHECKSUM_KEY] = np.array(state_checksum(payload))
        final = self.path_for(epoch)
        tmp = final.with_name(final.name + f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                np.savez_compressed(handle, **payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
        finally:
            if tmp.exists():
                tmp.unlink()
        self._prune()
        return final

    def load(self, path: str | os.PathLike) -> dict[str, np.ndarray]:
        """Load and integrity-check one checkpoint file."""
        try:
            # Own the file handle: np.load leaks it when the archive fails
            # to parse, which shows up as a ResourceWarning.
            with open(path, "rb") as handle:
                with np.load(handle, allow_pickle=False) as archive:
                    arrays = {name: archive[name] for name in archive.files}
        # Corrupted bytes surface as whatever the zip/npy parsers choke
        # on (BadZipFile, NotImplementedError, struct.error, EOFError,
        # ...) — this is an integrity boundary, so catch broadly and
        # re-raise as one typed error.
        except Exception as error:  # noqa: BLE001
            raise CheckpointCorruptionError(
                f"unreadable checkpoint {path}: {error}"
            ) from error
        stored = arrays.pop(CHECKSUM_KEY, None)
        if stored is None:
            raise CheckpointCorruptionError(f"checkpoint {path} has no checksum entry")
        actual = state_checksum(arrays)
        if str(stored) != actual:
            raise CheckpointCorruptionError(
                f"checksum mismatch in {path}: stored {str(stored)[:12]}…, "
                f"recomputed {actual[:12]}…"
            )
        return arrays

    def load_latest(self) -> tuple[int, dict[str, np.ndarray]] | None:
        """Newest *valid* checkpoint, or ``None`` if none loads cleanly.

        Corrupt files are skipped (newest-first), so one bad write does
        not strand the run.
        """
        for epoch, path in reversed(self.list_checkpoints()):
            try:
                return epoch, self.load(path)
            except CheckpointCorruptionError:
                continue
        return None

    def _prune(self) -> None:
        checkpoints = self.list_checkpoints()
        for _, path in checkpoints[: -self.keep]:
            try:
                path.unlink()
            except OSError:
                pass
