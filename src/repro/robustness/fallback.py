"""Degraded-mode forecast fallbacks.

When the model forward raises or emits non-finite values, the serving
path must still answer.  These model-free baselines compute a finite
``(horizon, N)`` forecast from the lookback window alone:

- **persistence** — repeat the last observation (the strongest naive
  baseline on most high-frequency series);
- **seasonal-naive** — repeat the last full season, the standard
  fallback when the series has a known period (e.g. ``steps_per_day``).

Both sanitize their input, so they stay finite even if the buffer
itself was poisoned before ingestion guards were enabled.
"""

from __future__ import annotations

import numpy as np


def _sanitize(window: np.ndarray) -> np.ndarray:
    window = np.asarray(window, dtype=np.float64)
    if np.isfinite(window).all():
        return window
    return np.nan_to_num(window, nan=0.0, posinf=0.0, neginf=0.0)


def persistence_forecast(window: np.ndarray, horizon: int) -> np.ndarray:
    """Repeat the last row of ``(L, N)`` ``window`` for ``horizon`` steps."""
    window = _sanitize(window)
    return np.tile(window[-1], (horizon, 1))


def seasonal_naive_forecast(
    window: np.ndarray, horizon: int, period: int
) -> np.ndarray:
    """Tile the last ``period`` rows of ``window`` out to ``horizon`` steps.

    Falls back to persistence when the window is shorter than one
    period or the period is degenerate.
    """
    window = _sanitize(window)
    if period is None or period < 1 or period > len(window):
        return persistence_forecast(window, horizon)
    season = window[-period:]
    repeats = -(-horizon // period)  # ceil division
    return np.tile(season, (repeats, 1))[:horizon]


FALLBACKS = {
    "persistence": persistence_forecast,
    "seasonal": seasonal_naive_forecast,
}
