"""FOCUS (ICDE 2025) reproduction.

``repro`` implements *Accurate and Efficient Multivariate Time Series
Forecasting via Offline Clustering* end-to-end, including every substrate
the paper depends on:

- ``repro.autograd`` / ``repro.nn`` / ``repro.optim`` — a from-scratch
  numpy deep-learning stack standing in for PyTorch.
- ``repro.data`` — synthetic equivalents of the seven public benchmark
  datasets (ETTh1, ETTm1, Traffic, Electricity, Weather, PEMS04, PEMS08).
- ``repro.core`` — FOCUS itself: offline segment clustering, ProtoAttn,
  the dual-branch extractor, and the parallel fusion forecasting head.
- ``repro.baselines`` — the seven comparison models from the paper.
- ``repro.training`` / ``repro.profiling`` / ``repro.analysis`` — the
  training loop, the FLOPs/memory/parameter accounting used by the paper's
  efficiency figures, and the analysis tooling behind its case studies.
- ``repro.robustness`` — fault tolerance for both phases: crash-safe
  checkpoints, serving health/guardrails, degraded-mode fallbacks, and a
  deterministic fault-injection harness.
- ``repro.serving`` — concurrent multi-entity serving: per-entity ring
  sessions, micro-batched forwards, a versioned forecast cache, and a
  bounded-queue server with admission control.

See ``DESIGN.md`` for the full system inventory and per-experiment index.
"""

__version__ = "1.0.0"

__all__ = [
    "autograd",
    "nn",
    "optim",
    "data",
    "core",
    "baselines",
    "training",
    "profiling",
    "analysis",
    "robustness",
    "serving",
]
