"""Command-line interface for the FOCUS reproduction.

Subcommands::

    python -m repro datasets                      # list dataset presets
    python -m repro cluster  --dataset PEMS08 -k 8 -p 12 [--save protos.npz]
    python -m repro run      --model FOCUS --dataset PEMS08 --epochs 6
    python -m repro profile  --model FOCUS --dataset PEMS08 --lookback 384
    python -m repro profile  --ops --dtype float32   # per-op wall clock
    python -m repro compare  --dataset PEMS08 --models FOCUS,DLinear,PatchTST
    python -m repro bench    [--quick] [--out BENCH_hotpath.json]
    python -m repro monitor  RUN_DIR [--follow] [--validate] [--trace] [--fleet]
    python -m repro serve    --replay [--entities 4] [--steps 128] [--shards N]
    python -m repro serve    --replay --maintenance [--shift-after 96]
    python -m repro serve    --replay --shards 2 --trace --slo-p99-ms 250
    python -m repro serve    --replay --engine plan [--shards N]

All commands operate on the synthetic dataset surrogates (seeded, see
DESIGN.md) and print plain-text tables.  Model-building commands accept
``--dtype float32`` to run the whole pipeline in single precision.
``run`` and ``cluster`` accept ``--telemetry-dir DIR`` to emit
schema-versioned JSONL events plus a Prometheus metrics snapshot there;
``monitor`` renders (or tails) such a directory.  See
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_telemetry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry-dir", default=None,
        help="directory for JSONL run events + Prometheus metrics snapshot "
             "(inspect with `repro monitor DIR`)",
    )


def _add_common_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="PEMS08", help="dataset preset name")
    parser.add_argument("--scale", default="smoke", choices=["smoke", "paper"])
    parser.add_argument("--lookback", type=int, default=96)
    parser.add_argument("--horizon", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--dtype", default="float64", choices=["float32", "float64"],
        help="default floating dtype for parameters and activations",
    )


def _cmd_datasets(_args) -> int:
    from repro.data import DATASETS
    from repro.training.reporting import format_table

    rows = [
        {
            "name": spec.name,
            "domain": spec.domain,
            "steps_per_day": spec.steps_per_day,
            "paper_T": spec.length,
            "paper_N": spec.num_entities,
            "smoke_T": spec.smoke_length,
            "smoke_N": spec.smoke_entities,
            "split": ":".join(map(str, spec.split)),
        }
        for spec in DATASETS.values()
    ]
    print(format_table(rows, title="Dataset presets (Table II of the paper)"))
    return 0


def _cmd_cluster(args) -> int:
    from repro.core import ClusteringConfig, SegmentClusterer
    from repro.data import load_dataset, segment_series
    from repro.telemetry import (
        NULL_LOGGER,
        NULL_TRACER,
        MetricsRegistry,
        RunLogger,
        Tracer,
        write_prometheus,
    )

    logger, tracer, registry = NULL_LOGGER, NULL_TRACER, None
    if args.telemetry_dir:
        logger = RunLogger.to_dir(args.telemetry_dir)
        registry = MetricsRegistry()
        tracer = Tracer(registry)
    logger.event(
        "run_start", kind="cluster", dataset=args.dataset,
        num_prototypes=args.num_prototypes, segment_length=args.segment_length,
    )
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    with tracer.span("cluster.fit"):
        clusterer = SegmentClusterer(
            ClusteringConfig(
                num_prototypes=args.num_prototypes,
                segment_length=args.segment_length,
                alpha=args.alpha,
                seed=args.seed,
            )
        ).fit(data.train)
    segments = segment_series(data.train, args.segment_length)
    with tracer.span("cluster.assign"):
        labels = clusterer.assign(segments)
    shares = np.bincount(labels, minlength=args.num_prototypes) / len(labels)
    inertia = clusterer.inertia(segments)
    logger.event(
        "cluster_fit",
        num_prototypes=args.num_prototypes,
        segment_length=args.segment_length,
        n_segments=len(segments),
        iterations=int(clusterer.n_iter_),
        inertia=float(inertia),
        usage=[round(float(share), 6) for share in shares],
    )
    print(f"fitted {args.num_prototypes} prototypes on {len(segments)} segments "
          f"({clusterer.n_iter_} iterations)")
    for j, share in enumerate(shares):
        print(f"  prototype {j}: usage {share:6.1%}")
    print(f"inertia: {inertia:.4f}")
    if args.save:
        clusterer.save(args.save)
        print(f"saved to {args.save}")
    logger.event("run_end", kind="cluster")
    if args.telemetry_dir:
        write_prometheus(registry, args.telemetry_dir)
        logger.close()
        print(f"telemetry written to {args.telemetry_dir}")
    return 0


def _cmd_run(args) -> int:
    from repro.data import load_dataset
    from repro.training import ExperimentConfig, TrainerConfig, run_experiment
    from repro.training.reporting import format_table

    config = ExperimentConfig(
        model=args.model,
        dataset=args.dataset,
        lookback=args.lookback,
        horizon=args.horizon,
        scale=args.scale,
        seed=args.seed,
        trainer=TrainerConfig(
            epochs=args.epochs,
            batch_size=args.batch_size,
            lr=args.lr,
            patience=99,
            restore_best=False,
            verbose=True,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            telemetry_dir=args.telemetry_dir,
        ),
    )
    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    result = run_experiment(config, data)
    print()
    print(format_table([result.row()], title="Result"))
    print(f"training took {result.train_seconds:.1f}s")
    if args.telemetry_dir:
        print(f"telemetry written to {args.telemetry_dir}")
    return 0


def _cmd_profile(args) -> int:
    from repro.data import load_dataset
    from repro.profiling import profile_model
    from repro.training import ExperimentConfig, build_model

    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    config = ExperimentConfig(
        model=args.model,
        dataset=args.dataset,
        lookback=args.lookback,
        horizon=args.horizon,
        scale=args.scale,
        seed=args.seed,
    )
    model = build_model(config, data)
    if args.ops:
        return _profile_wall_clock(args, data, model)
    report = profile_model(model, (1, args.lookback, data.num_entities))
    print(f"{args.model} @ L={args.lookback}, N={data.num_entities}: {report}")
    top = sorted(report.per_op_flops.items(), key=lambda kv: -kv[1])[:8]
    for op_name, flops in top:
        print(f"  {op_name:20s} {flops / 1e6:10.2f} MFLOPs")
    return 0


def _profile_wall_clock(args, data, model) -> int:
    """``repro profile --ops``: per-op wall clock over one training step."""
    from repro.autograd import Tensor, get_default_dtype
    from repro.optim import AdamW
    from repro.profiling import profile_ops

    dtype = get_default_dtype()
    rng = np.random.default_rng(args.seed)
    x = Tensor(
        rng.standard_normal(
            (args.batch_size, args.lookback, data.num_entities)
        ).astype(dtype)
    )
    y = Tensor(
        rng.standard_normal(
            (args.batch_size, args.horizon, data.num_entities)
        ).astype(dtype)
    )
    optimizer = AdamW(model.parameters(), lr=1e-3)
    # Warm-up step so lazily-built caches don't pollute the profile.
    loss = ((model(x) - y) ** 2.0).mean()
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    with profile_ops() as prof:
        loss = ((model(x) - y) ** 2.0).mean()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        prof.note("optimizer.step")
    print(
        f"{args.model} @ L={args.lookback}, N={data.num_entities}, "
        f"batch={args.batch_size}, dtype={np.dtype(dtype).name} — one training "
        f"step, {prof.total_seconds * 1e3:.1f}ms total"
    )
    print(prof.table(top=args.top))
    return 0


def _cmd_compare(args) -> int:
    from repro.data import load_dataset
    from repro.training import ExperimentConfig, TrainerConfig, run_experiment
    from repro.training.reporting import format_table, rank_by

    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    trainer = TrainerConfig(
        epochs=args.epochs, batch_size=args.batch_size, lr=args.lr,
        patience=99, restore_best=False,
    )
    rows = []
    for model_name in args.models.split(","):
        model_name = model_name.strip()
        print(f"training {model_name} ...", file=sys.stderr)
        result = run_experiment(
            ExperimentConfig(
                model=model_name,
                dataset=args.dataset,
                lookback=args.lookback,
                horizon=args.horizon,
                scale=args.scale,
                seed=args.seed,
                trainer=trainer,
                train_stride=2,
            ),
            data,
        )
        rows.append(result.row())
    print(format_table(rank_by(rows, "mse"), title=f"{args.dataset} comparison"))
    return 0


def _cmd_bench(args) -> int:
    from repro.profiling.bench import run_benchmarks, write_report

    report = run_benchmarks(quick=args.quick)
    clustering = report["clustering_fit"]
    attn = report["protoattn_forward"]
    streaming = report["streaming"]
    print(f"hot-path benchmark ({report['mode']} mode)")
    print(
        f"  clustering fit : vectorized {clustering['vectorized_s']:.3f}s vs "
        f"loop {clustering['loop_s']:.3f}s  ({clustering['speedup']:.2f}x, "
        f"max|diff| {clustering['max_abs_diff']:.2e})"
    )
    print(
        f"  protoattn fwd  : cached {attn['cached_ms']:.3f}ms vs "
        f"uncached {attn['uncached_ms']:.3f}ms  ({attn['speedup']:.2f}x)"
    )
    print(
        f"  streaming      : {streaming['observe_per_s']:.0f} obs/s "
        f"({streaming['observe_us']:.1f}us/observe), "
        f"forecast {streaming['forecast_ms']:.2f}ms"
    )
    step = report["training_step"]
    print(
        f"  training step  : float64 {step['float64_ms']:.1f}ms vs "
        f"float32 {step['float32_ms']:.1f}ms  ({step['speedup_fp32']:.2f}x); "
        f"allocations/step {step['allocs_per_step_legacy']} -> "
        f"{step['allocs_per_step_inplace']} "
        f"(-{step['alloc_reduction']:.0%})"
    )
    telemetry = report["telemetry"]
    print(
        f"  telemetry      : step {telemetry['baseline_ms']:.1f}ms bare, "
        f"{telemetry['off_ms']:.1f}ms off ({telemetry['overhead_off_pct']:+.2f}%), "
        f"{telemetry['on_ms']:.1f}ms on ({telemetry['overhead_on_pct']:+.2f}%); "
        f"jsonl {telemetry['events_per_s']:.0f} events/s"
    )
    serving = report["serving"]
    batch32 = serving["batched"]["batch_32"]
    print(
        f"  serving        : sequential "
        f"{serving['sequential']['throughput_per_s']:.0f} fc/s vs batch-32 "
        f"{batch32['throughput_per_s']:.0f} fc/s "
        f"({serving['speedup_batch32']:.2f}x, p99 {batch32['p99_ms']:.2f}ms); "
        f"cache-on {serving['cache_on']['throughput_per_s']:.0f} fc/s"
    )
    fleet = report["fleet"]
    shard_line = "  ".join(
        f"{shards}x {entry['throughput_per_s']:.0f} fc/s "
        f"(p99 {entry['p99_ms']:.2f}ms)"
        for shards, entry in fleet["shards"].items()
    )
    print(f"  fleet          : {shard_line}")
    print(
        f"                   scaling 4-shard/1-shard {fleet['scaling_4x']:.2f}x "
        f"(gate >={fleet['gate']}x "
        f"{'active' if fleet['gate_active'] else 'inactive'}, "
        f"{fleet['cpu_count']} CPUs)"
    )
    obs = report["fleet_observability"]
    print(
        f"  observability  : {obs['off_per_s']:.0f} fc/s off vs "
        f"{obs['on_per_s']:.0f} fc/s traced+SLO "
        f"({obs['overhead_pct']:+.2f}%, gate <={obs['gate_pct']}%); "
        f"aggregation {obs['aggregate_ms']:.2f}ms/"
        f"{obs['aggregate_shards']}-shard cycle"
    )
    plan = report["plan_engine"]
    plan_b1 = plan["batches"]["1"]
    print(
        f"  plan engine    : B=1 eager {plan_b1['eager_ms']:.3f}ms vs "
        f"plan {plan_b1['plan_ms']:.3f}ms ({plan_b1['speedup']:.2f}x, "
        f"gate >={plan['gate']}x); {plan['plan_ops']} ops, "
        f"{plan['plan_folded']} folded, arena {plan['arena_kb']:.1f}KB, "
        f"build {plan['build_ms']:.1f}ms"
    )
    failed = False
    if not clustering["equivalent_1e8"]:
        print("WARNING: vectorized and loop prototypes diverge beyond 1e-8")
        failed = True
    if not serving["meets_1_5x"]:
        print(
            "WARNING: batched serving throughput at batch 32 is "
            f"{serving['speedup_batch32']:.2f}x sequential (gate: >=1.5x)"
        )
        failed = True
    if not fleet["consistent_response_counts"]:
        print("WARNING: fleet replay response counts differ across shard counts")
        failed = True
    if fleet["gate_active"] and not fleet["meets_scaling_gate"]:
        print(
            f"WARNING: 4-shard fleet throughput is {fleet['scaling_4x']:.2f}x "
            f"single-shard (gate: >={fleet['gate']}x on this "
            f"{fleet['cpu_count']}-CPU host)"
        )
        failed = True
    if not obs["meets_overhead_gate"]:
        print(
            f"WARNING: observability plane costs {obs['overhead_pct']:+.2f}% "
            f"serving throughput (gate: <={obs['gate_pct']}%)"
        )
        failed = True
    if not plan["meets_plan_gate"]:
        print(
            f"WARNING: plan engine is {plan['speedup_uncached']:.2f}x eager "
            f"on the uncached B=1 path (gate: >={plan['gate']}x)"
        )
        failed = True
    if args.out:
        try:
            write_report(report, args.out)
        except OSError as error:
            print(f"error: could not write {args.out}: {error}", file=sys.stderr)
            return 1
        print(f"wrote {args.out}")
    # Timing gates are noisy on shared boxes (an in-process run inherits
    # whatever heap and frequency state the host is in), so a miss is a
    # warning by default; CI re-asserts every gate from the written JSON
    # in a dedicated job, and --strict restores the hard failure.
    if failed and args.strict:
        return 1
    return 0


def _cmd_serve(args) -> int:
    """``repro serve --replay``: drive the serving stack on synthetic streams."""
    from repro.core import ClusteringConfig
    from repro.core.model import FOCUSConfig, FOCUSForecaster
    from repro.data import load_dataset
    from repro.serving import ForecastServer, ServingConfig, replay_streams
    from repro.telemetry import (
        NULL_LOGGER,
        MetricsRegistry,
        RunLogger,
        write_prometheus,
    )

    if not args.replay:
        print("error: only --replay mode is implemented", file=sys.stderr)
        return 2

    logger, registry = NULL_LOGGER, None
    if args.telemetry_dir:
        logger = RunLogger.to_dir(args.telemetry_dir)
        registry = MetricsRegistry()
    logger.event("run_start", kind="serve", dataset=args.dataset)

    slo = None
    if args.slo_p99_ms is not None or args.slo_error_rate is not None:
        from repro.telemetry import SloConfig

        slo_kwargs = {"min_samples": 8, "evaluate_every": 8}
        if args.slo_p99_ms is not None:
            slo_kwargs["latency_p99_ms"] = args.slo_p99_ms
        if args.slo_error_rate is not None:
            slo_kwargs["error_rate"] = args.slo_error_rate
        slo = SloConfig(**slo_kwargs)

    data = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    config = FOCUSConfig(
        lookback=args.lookback,
        horizon=args.horizon,
        num_entities=data.num_entities,
        segment_length=12,
        num_prototypes=8,
        d_model=32,
        num_readout=2,
    )
    model = FOCUSForecaster.from_training_data(
        config, data.train, ClusteringConfig(num_prototypes=8, segment_length=12,
                                             seed=args.seed)
    )
    rng = np.random.default_rng(args.seed)
    steps = args.lookback + args.steps
    streams = {}
    for index in range(args.entities):
        offset = rng.integers(0, max(len(data.test) - steps, 1))
        streams[f"entity-{index}"] = data.test[offset : offset + steps]
    if args.shift_after > 0:
        # Motif shift: superimpose a strong periodic pattern the offline
        # prototypes never saw, starting at --shift-after.
        for entity_id, stream in streams.items():
            shifted = stream.copy()
            tail = np.arange(len(shifted) - args.shift_after)
            shifted[args.shift_after :] += (
                5.0 * np.std(stream) * np.sin(tail / 2.0)[:, None]
            )
            streams[entity_id] = shifted

    maintenance = None
    if args.maintenance:
        from repro.maintenance import MaintenanceConfig, MaintenanceWorker
        from repro.telemetry import DriftConfig

        maintenance = MaintenanceWorker(
            model,
            MaintenanceConfig(
                history_rows=max(4 * args.lookback, 256),
                # Sized for a short demo replay: profile densely so the
                # TV window has enough samples to smooth sampling noise,
                # yet the alarm still fires within the replayed stream.
                drift_every=4,
                drift=DriftConfig(
                    window=16, baseline_forecasts=12, threshold=0.25,
                    alarm_streak=2, min_segments=16,
                ),
            ),
            registry=registry,
            run_logger=logger,
        )

    if args.shards > 0:
        from repro.serving import (
            FleetConfig,
            ShardRouter,
            replay_fleet,
            replay_routed,
        )

        with ShardRouter(
            model,
            FleetConfig(
                shards=args.shards,
                max_batch=args.max_batch,
                engine=args.engine,
                nan_policy=args.nan_policy,
                trace=args.trace,
                slo=slo,
            ),
            telemetry=registry,
            run_logger=logger,
        ) as router:
            if maintenance is not None:
                # Row-by-row routed replay: the maintenance tap only
                # sees traffic that crosses the router.
                router.attach_maintenance(maintenance)
                with maintenance:
                    responses = replay_routed(
                        router, streams, forecast_every=args.forecast_every
                    )
                    maintenance.join_idle()
            elif args.trace:
                # Tracing needs each request to cross the router (where
                # contexts are minted), so the whole-stream fast path is
                # out — replay row by row instead.
                responses = replay_routed(
                    router, streams, forecast_every=args.forecast_every
                )
            else:
                responses = replay_fleet(
                    router, streams, forecast_every=args.forecast_every
                )
            stats = router.stats()
            if registry is not None:
                # Pull every worker's registry snapshot and merge it,
                # shard-labelled, into the export written below.
                registry = router.merged_registry()
        mode = f"{args.shards}-shard fleet"
    else:
        server = ForecastServer(
            model,
            ServingConfig(
                max_batch=args.max_batch,
                engine=args.engine,
                queue_capacity=args.queue_capacity,
                nan_policy=args.nan_policy,
                trace=args.trace,
                slo=slo,
            ),
            telemetry=registry,
            run_logger=logger,
        )
        if maintenance is not None:
            server.attach_maintenance(maintenance)
            maintenance.start()
        if args.threaded:
            with server:
                responses = replay_streams(
                    server, streams, forecast_every=args.forecast_every
                )
        else:
            responses = replay_streams(
                server, streams, forecast_every=args.forecast_every
            )
        if maintenance is not None:
            maintenance.join_idle()
            maintenance.close()
        stats = server.stats()
        mode = "threaded" if args.threaded else "synchronous"

    by_source: dict[str, int] = {}
    for response in responses:
        by_source[response.source] = by_source.get(response.source, 0) + 1
    print(f"replayed {args.entities} entities x {steps} steps ({mode} mode)")
    print(f"  forecasts : {len(responses)} "
          + " ".join(f"{source}={count}" for source, count in sorted(by_source.items())))
    if args.shards > 0:
        print(f"  fleet     : {stats['alive_workers']} live workers, "
              f"prototype epoch {stats['prototype_epoch']}")
        shard_entities = {
            shard: shard_stats["entities"]
            for shard, shard_stats in sorted(stats["shards"].items())
        }
        print("  shards    : "
              + " ".join(f"{shard}:{count}e" for shard, count in shard_entities.items()))
    else:
        print(f"  health    : {stats['health']}")
        if stats.get("cache_hit_rate") is not None:
            print(f"  cache     : {stats['cache_hit_rate']:.1%} hit rate")
    print(f"  rejected  : {stats['rejected_requests']} requests, "
          f"{stats['rejected_observations']} observations")
    if maintenance is not None:
        mstats = maintenance.stats()
        print(f"  maintain  : {mstats['alarms']} alarms, "
              f"{mstats['jobs_swapped']} swaps, "
              f"{mstats['jobs_rejected']} rejected, "
              f"{mstats['rollbacks']} rollbacks "
              f"(drift {mstats['drift']:.3f}, state {mstats['state']})")
    if args.trace:
        traced = sum(1 for response in responses if response.request_id)
        print(f"  traces    : {traced}/{len(responses)} responses traced "
              f"(inspect with `repro monitor DIR --trace`)")
    if slo is not None and "slo" in stats:
        snap = stats["slo"]
        print(f"  slo       : p99 {snap['latency_p99_ms']:.2f}ms, "
              f"error rate {snap['error_rate']:.3f}, "
              f"burn {snap['budget_burn_rate']:.2f} "
              f"over {snap['samples']} samples")
    logger.event("run_end", kind="serve")
    if args.telemetry_dir:
        write_prometheus(registry, args.telemetry_dir)
        logger.close()
        print(f"telemetry written to {args.telemetry_dir}")
    return 0


def _cmd_monitor(args) -> int:
    import json

    from repro.telemetry import (
        follow_events,
        summarize_fleet,
        summarize_run,
        summarize_traces,
        validate_run,
    )

    if args.trace:
        print(summarize_traces(args.run_dir, last=args.last))
        return 0
    if args.fleet:
        print(summarize_fleet(args.run_dir))
        return 0
    if args.validate:
        errors = validate_run(args.run_dir)
        if errors:
            for problem in errors:
                print(problem, file=sys.stderr)
            print(f"{len(errors)} schema violation(s) in {args.run_dir}", file=sys.stderr)
            return 1
        print(f"{args.run_dir}: all events valid (schema v1)")
        return 0
    if args.follow:
        try:
            for event in follow_events(args.run_dir, max_polls=args.max_polls):
                print(json.dumps(event, sort_keys=True))
        except KeyboardInterrupt:
            pass
        return 0
    print(summarize_run(args.run_dir, last_epochs=args.last))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset presets").set_defaults(
        func=_cmd_datasets
    )

    cluster = sub.add_parser("cluster", help="run the offline clustering phase")
    _add_common_model_args(cluster)
    cluster.add_argument("-k", "--num-prototypes", type=int, default=8)
    cluster.add_argument("-p", "--segment-length", type=int, default=12)
    cluster.add_argument("--alpha", type=float, default=0.2)
    cluster.add_argument("--save", help="npz path to save the fitted prototypes")
    _add_telemetry_arg(cluster)
    cluster.set_defaults(func=_cmd_cluster)

    run = sub.add_parser("run", help="train and evaluate one model")
    _add_common_model_args(run)
    run.add_argument("--model", default="FOCUS")
    run.add_argument("--epochs", type=int, default=6)
    run.add_argument("--batch-size", type=int, default=32)
    run.add_argument("--lr", type=float, default=5e-3)
    run.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for crash-safe training checkpoints (enables "
             "loss-spike rollback + LR halving)",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="checkpoint cadence in epochs (with --checkpoint-dir)",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="resume from the newest valid checkpoint in --checkpoint-dir",
    )
    _add_telemetry_arg(run)
    run.set_defaults(func=_cmd_run)

    profile = sub.add_parser(
        "profile", help="analytic FLOPs/memory/params, or --ops wall clock"
    )
    _add_common_model_args(profile)
    profile.add_argument("--model", default="FOCUS")
    profile.add_argument(
        "--ops", action="store_true",
        help="measure per-op wall clock over one training step instead of "
             "analytic FLOPs",
    )
    profile.add_argument("--batch-size", type=int, default=32)
    profile.add_argument(
        "--top", type=int, default=None,
        help="with --ops: show only the N most expensive ops",
    )
    profile.set_defaults(func=_cmd_profile)

    compare = sub.add_parser("compare", help="train several models, rank by MSE")
    _add_common_model_args(compare)
    compare.add_argument("--models", default="FOCUS,PatchTST,DLinear")
    compare.add_argument("--epochs", type=int, default=6)
    compare.add_argument("--batch-size", type=int, default=32)
    compare.add_argument("--lr", type=float, default=5e-3)
    compare.set_defaults(func=_cmd_compare)

    bench = sub.add_parser("bench", help="time the hot paths, write BENCH_hotpath.json")
    bench.add_argument("--quick", action="store_true", help="smaller pinned config")
    bench.add_argument("--strict", action="store_true",
                       help="exit 1 when a perf gate misses (default: warn)")
    bench.add_argument("--out", default="BENCH_hotpath.json",
                       help="output JSON path ('' to skip writing)")
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve", help="run the concurrent serving stack over replayed streams"
    )
    _add_common_model_args(serve)
    serve.add_argument(
        "--replay", action="store_true",
        help="replay synthetic test streams through the server (required)",
    )
    serve.add_argument("--entities", type=int, default=4,
                       help="number of serving entities (independent streams)")
    serve.add_argument("--steps", type=int, default=128,
                       help="post-warmup steps to replay per entity")
    serve.add_argument("--forecast-every", type=int, default=8,
                       help="request a forecast every N steps per entity")
    serve.add_argument("--max-batch", type=int, default=32)
    serve.add_argument("--engine", default="eager", choices=["eager", "plan"],
                       help="forward engine for batched forecasts: 'eager' "
                            "(reference) or 'plan' (compiled execution plans, "
                            "bit-identical in float64; see docs/api.md)")
    serve.add_argument("--queue-capacity", type=int, default=256)
    serve.add_argument("--nan-policy", default="reject",
                       choices=["reject", "impute_last", "impute_prototype"])
    serve.add_argument("--threaded", action="store_true",
                       help="use the background batching worker instead of "
                            "synchronous draining")
    serve.add_argument("--shards", type=int, default=0,
                       help="serve through a sharded multi-process fleet of N "
                            "workers (0 = single-process)")
    serve.add_argument("--maintenance", action="store_true",
                       help="run the prototype-lifecycle maintenance worker "
                            "(drift-triggered re-clustering with shadow "
                            "scoring and hot-swap; see docs/maintenance.md)")
    serve.add_argument("--shift-after", type=int, default=0,
                       help="inject a motif shift into every stream after N "
                            "replay steps (demo fodder for --maintenance; "
                            "0 = no shift)")
    serve.add_argument("--trace", action="store_true",
                       help="trace every request end to end (per-stage latency "
                            "spans, serve_trace run events; fleet mode merges "
                            "router- and worker-side spans)")
    serve.add_argument("--slo-p99-ms", type=float, default=None,
                       help="enable SLO tracking with this p99 latency "
                            "objective in milliseconds")
    serve.add_argument("--slo-error-rate", type=float, default=None,
                       help="enable SLO tracking with this error/fallback-rate "
                            "objective (fraction, e.g. 0.05)")
    _add_telemetry_arg(serve)
    serve.set_defaults(func=_cmd_serve)

    monitor = sub.add_parser(
        "monitor", help="render or validate a telemetry run directory"
    )
    monitor.add_argument("run_dir", help="directory written by --telemetry-dir")
    monitor.add_argument(
        "--validate", action="store_true",
        help="exit 1 if any event violates the v1 schema",
    )
    monitor.add_argument(
        "--follow", action="store_true",
        help="tail events.jsonl and print events as JSON lines",
    )
    monitor.add_argument(
        "--max-polls", type=int, default=None,
        help="with --follow: stop after N empty polls (default: forever)",
    )
    monitor.add_argument(
        "--trace", action="store_true",
        help="print per-request latency decompositions from serve_trace events",
    )
    monitor.add_argument(
        "--fleet", action="store_true",
        help="summarize the merged fleet metrics.prom (per-shard rows, fleet "
             "gauges, SLO transitions)",
    )
    monitor.add_argument(
        "--last", type=int, default=8,
        help="number of trailing epochs to show in the summary",
    )
    monitor.set_defaults(func=_cmd_monitor)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "dtype", None):
        from repro.autograd import set_default_dtype

        set_default_dtype(np.dtype(args.dtype))
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
