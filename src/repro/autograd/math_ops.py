"""Elementwise differentiable math operations."""

from __future__ import annotations

import numpy as np
from scipy import special as _special

from repro.autograd.tensor import Tensor, as_tensor

_SQRT_2 = float(np.sqrt(2.0))


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    x = as_tensor(x)
    out_data = np.exp(x.data)
    return Tensor._make(out_data, [(x, lambda g: g * out_data)], "exp")


def log(x: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    x = as_tensor(x)
    return Tensor._make(np.log(x.data), [(x, lambda g: g / x.data)], "log")


def sqrt(x: Tensor) -> Tensor:
    """Elementwise square root."""
    x = as_tensor(x)
    out_data = np.sqrt(x.data)
    return Tensor._make(out_data, [(x, lambda g: g / (2.0 * out_data))], "sqrt")


def abs(x: Tensor) -> Tensor:  # noqa: A001 - mirrors numpy naming
    """Elementwise absolute value (subgradient sign(x) at 0 -> 0)."""
    x = as_tensor(x)
    return Tensor._make(np.abs(x.data), [(x, lambda g: g * np.sign(x.data))], "abs")


def sin(x: Tensor) -> Tensor:
    """Elementwise sine."""
    x = as_tensor(x)
    return Tensor._make(np.sin(x.data), [(x, lambda g: g * np.cos(x.data))], "sin")


def cos(x: Tensor) -> Tensor:
    """Elementwise cosine."""
    x = as_tensor(x)
    return Tensor._make(np.cos(x.data), [(x, lambda g: -g * np.sin(x.data))], "cos")


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    x = as_tensor(x)
    out_data = np.tanh(x.data)
    return Tensor._make(out_data, [(x, lambda g: g * (1.0 - out_data**2))], "tanh")


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid (numerically stable via expit)."""
    x = as_tensor(x)
    out_data = _special.expit(x.data)
    return Tensor._make(
        out_data, [(x, lambda g: g * out_data * (1.0 - out_data))], "sigmoid"
    )


def relu(x: Tensor) -> Tensor:
    """Elementwise max(x, 0)."""
    x = as_tensor(x)
    mask = x.data > 0
    return Tensor._make(np.where(mask, x.data, 0.0), [(x, lambda g: g * mask)], "relu")


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """ReLU with a small slope for negative inputs."""
    x = as_tensor(x)
    mask = x.data > 0
    slope = np.where(mask, 1.0, negative_slope)
    return Tensor._make(
        x.data * slope,
        [(x, lambda g: g * slope)],
        "leaky_relu",
        extras=negative_slope,
    )


def erf(x: Tensor) -> Tensor:
    """Elementwise Gauss error function."""
    x = as_tensor(x)
    return Tensor._make(
        _special.erf(x.data),
        [(x, lambda g: g * float(2.0 / np.sqrt(np.pi)) * np.exp(-x.data**2))],
        "erf",
    )


def gelu(x: Tensor) -> Tensor:
    """Exact GELU: ``x * Phi(x)`` with the Gaussian CDF ``Phi``."""
    x = as_tensor(x)
    cdf = 0.5 * (1.0 + _special.erf(x.data / _SQRT_2))
    pdf = np.exp(-0.5 * x.data**2) / float(np.sqrt(2.0 * np.pi))
    return Tensor._make(
        x.data * cdf, [(x, lambda g: g * (cdf + x.data * pdf))], "gelu"
    )


def silu(x: Tensor) -> Tensor:
    """SiLU / swish: ``x * sigmoid(x)``."""
    x = as_tensor(x)
    sig = _special.expit(x.data)
    return Tensor._make(
        x.data * sig,
        [(x, lambda g: g * (sig + x.data * sig * (1.0 - sig)))],
        "silu",
    )


def softplus(x: Tensor) -> Tensor:
    """Smooth ReLU: log(1 + e^x), computed stably."""
    x = as_tensor(x)
    out_data = np.logaddexp(0.0, x.data)
    return Tensor._make(out_data, [(x, lambda g: g * _special.expit(x.data))], "softplus")


def clip(x: Tensor, low: float | None = None, high: float | None = None) -> Tensor:
    """Clamp values; gradient is passed through inside the clip range only."""
    x = as_tensor(x)
    out_data = np.clip(x.data, low, high)
    inside = np.ones_like(x.data, dtype=bool)
    if low is not None:
        inside &= x.data >= low
    if high is not None:
        inside &= x.data <= high
    return Tensor._make(out_data, [(x, lambda g: g * inside)], "clip", extras=(low, high))


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise max; on ties the gradient goes to the first argument."""
    a, b = as_tensor(a), as_tensor(b)
    a_wins = a.data >= b.data
    return Tensor._make(
        np.maximum(a.data, b.data),
        [(a, lambda g: g * a_wins), (b, lambda g: g * ~a_wins)],
        "maximum",
    )


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise min; on ties the gradient goes to the first argument."""
    a, b = as_tensor(a), as_tensor(b)
    a_wins = a.data <= b.data
    return Tensor._make(
        np.minimum(a.data, b.data),
        [(a, lambda g: g * a_wins), (b, lambda g: g * ~a_wins)],
        "minimum",
    )


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    """Select from ``a`` where ``condition`` else ``b`` (condition is data)."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    cond = cond.astype(bool)
    a, b = as_tensor(a), as_tensor(b)
    return Tensor._make(
        np.where(cond, a.data, b.data),
        [(a, lambda g: g * cond), (b, lambda g: g * ~cond)],
        "where",
    )
