"""Shape-manipulation operations (all differentiable)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autograd.tensor import Tensor, as_tensor


def reshape(x: Tensor, shape: Sequence[int]) -> Tensor:
    """Reshape without copying semantics (gradient reshapes back)."""
    x = as_tensor(x)
    shape = tuple(shape)
    return Tensor._make(
        x.data.reshape(shape), [(x, lambda g: g.reshape(x.shape))], "reshape"
    )


def flatten(x: Tensor) -> Tensor:
    """Flatten to 1-D."""
    return reshape(x, (-1,))


def transpose(x: Tensor, axes: Sequence[int] | None = None) -> Tensor:
    """Permute axes (all reversed when ``axes`` is None)."""
    x = as_tensor(x)
    if axes is None:
        axes = tuple(reversed(range(x.ndim)))
    axes = tuple(axes)
    inverse = tuple(int(i) for i in np.argsort(axes))
    return Tensor._make(
        x.data.transpose(axes),
        [(x, lambda g: g.transpose(inverse))],
        "transpose",
        extras=axes,
    )


def swapaxes(x: Tensor, axis1: int, axis2: int) -> Tensor:
    """Exchange two axes."""
    x = as_tensor(x)
    return Tensor._make(
        np.swapaxes(x.data, axis1, axis2),
        [(x, lambda g: np.swapaxes(g, axis1, axis2))],
        "swapaxes",
        extras=(axis1, axis2),
    )


def squeeze(x: Tensor, axis: int | None = None) -> Tensor:
    """Drop size-1 axes."""
    x = as_tensor(x)
    out_data = np.squeeze(x.data, axis=axis)
    return Tensor._make(out_data, [(x, lambda g: g.reshape(x.shape))], "squeeze")


def unsqueeze(x: Tensor, axis: int) -> Tensor:
    """Insert a size-1 axis at ``axis``."""
    x = as_tensor(x)
    out_data = np.expand_dims(x.data, axis=axis)
    return Tensor._make(out_data, [(x, lambda g: g.reshape(x.shape))], "unsqueeze")


def expand_dims(x: Tensor, axis: int) -> Tensor:
    """Alias of :func:`unsqueeze` mirroring numpy naming."""
    return unsqueeze(x, axis)


def broadcast_to(x: Tensor, shape: Sequence[int]) -> Tensor:
    """Materialize a broadcast view; the gradient sums back."""
    x = as_tensor(x)
    shape = tuple(shape)
    from repro.autograd.tensor import unbroadcast

    return Tensor._make(
        np.broadcast_to(x.data, shape).copy(),
        [(x, lambda g: unbroadcast(g, x.shape))],
        "broadcast_to",
    )


def repeat(x: Tensor, repeats: int, axis: int) -> Tensor:
    """Tile ``x`` ``repeats`` times along ``axis`` (numpy.repeat semantics)."""
    x = as_tensor(x)
    out_data = np.repeat(x.data, repeats, axis=axis)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        axis_norm = axis % x.ndim
        reshaped = list(x.shape)
        reshaped.insert(axis_norm + 1, repeats)
        return g.reshape(reshaped).sum(axis=axis_norm + 1)

    return Tensor._make(out_data, [(x, grad_fn)], "repeat", extras=(repeats, axis))


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate along an existing axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    axis_norm = axis % out_data.ndim
    offsets = np.cumsum([0] + [t.shape[axis_norm] for t in tensors])

    def make_grad_fn(index: int):
        start, stop = offsets[index], offsets[index + 1]
        slicer = [slice(None)] * out_data.ndim
        slicer[axis_norm] = slice(start, stop)
        slicer = tuple(slicer)
        return lambda g: g[slicer]

    parents = [(t, make_grad_fn(i)) for i, t in enumerate(tensors)]
    return Tensor._make(out_data, parents, "concat", extras=axis_norm)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    axis_norm = axis % out_data.ndim

    def make_grad_fn(index: int):
        return lambda g: np.take(g, index, axis=axis_norm)

    parents = [(t, make_grad_fn(i)) for i, t in enumerate(tensors)]
    return Tensor._make(out_data, parents, "stack", extras=axis_norm)


def split(x: Tensor, sections: int, axis: int = 0) -> list[Tensor]:
    """Split into equal sections along ``axis`` (numpy.split semantics)."""
    x = as_tensor(x)
    axis_norm = axis % x.ndim
    pieces = np.split(x.data, sections, axis=axis_norm)
    width = x.shape[axis_norm] // sections
    outputs = []
    for i, piece in enumerate(pieces):
        start = i * width

        def grad_fn(g: np.ndarray, start=start) -> np.ndarray:
            full = np.zeros_like(x.data)
            slicer = [slice(None)] * x.ndim
            slicer[axis_norm] = slice(start, start + width)
            full[tuple(slicer)] = g
            return full

        outputs.append(Tensor._make(piece, [(x, grad_fn)], "split"))
    return outputs


def pad(x: Tensor, pad_width, mode: str = "constant") -> Tensor:
    """Zero-pad (only constant mode is differentiable here)."""
    if mode != "constant":
        raise ValueError("only constant (zero) padding supports gradients")
    x = as_tensor(x)
    pad_width = np.asarray(pad_width)
    if pad_width.ndim == 1:
        pad_width = np.broadcast_to(pad_width, (x.ndim, 2))
    out_data = np.pad(x.data, pad_width, mode="constant")
    slicer = tuple(
        slice(int(before), int(before) + dim)
        for (before, _), dim in zip(pad_width, x.shape)
    )
    return Tensor._make(out_data, [(x, lambda g: g[slicer])], "pad")


def gather(x: Tensor, indices, axis: int = 0) -> Tensor:
    """Take rows/elements by integer indices along ``axis``."""
    x = as_tensor(x)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = np.take(x.data, indices, axis=axis)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        full = np.zeros_like(x.data)
        axis_norm = axis % x.ndim
        moved = np.moveaxis(full, axis_norm, 0)
        g_moved = np.moveaxis(
            g, tuple(range(axis_norm, axis_norm + indices.ndim)), tuple(range(indices.ndim))
        )
        np.add.at(moved, indices, g_moved)
        return full

    return Tensor._make(out_data, [(x, grad_fn)], "gather", extras=(indices, axis))
