"""Numerical gradient verification for the autograd engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float | None = None,
    rtol: float | None = None,
) -> bool:
    """Compare analytic gradients of ``sum(fn(*inputs))`` to finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch; returns
    True on success so it can be used directly in test assertions.

    Tolerances default by precision: ``atol=1e-5, rtol=1e-4`` for float64
    inputs, loosened to ``atol=1e-3, rtol=1e-2`` for float32.  Central
    differences are numerically meaningless in float32 itself, so for
    low-precision inputs the numeric reference is computed on float64
    twins of the inputs and compared against the float32 analytic grads.
    """
    for tensor_input in inputs:
        tensor_input.zero_grad()
        if not tensor_input.requires_grad:
            raise ValueError("gradcheck inputs must require grad")
    low_precision = any(t.data.dtype.itemsize < 8 for t in inputs)
    if atol is None:
        atol = 1e-3 if low_precision else 1e-5
    if rtol is None:
        rtol = 1e-2 if low_precision else 1e-4
    output = fn(*inputs)
    output.sum().backward()
    if low_precision:
        reference_inputs: Sequence[Tensor] = [
            Tensor(t.data.astype(np.float64), requires_grad=True) for t in inputs
        ]
    else:
        reference_inputs = inputs
    for i, tensor_input in enumerate(inputs):
        analytic = tensor_input.grad
        if analytic is None:
            analytic = np.zeros_like(tensor_input.data)
        numeric = numerical_gradient(fn, reference_inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
