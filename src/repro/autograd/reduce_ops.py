"""Reductions and normalized reductions (softmax family)."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, as_tensor

_builtin_sum = sum
_builtin_max = max


def _normalize_axis(axis, ndim: int):
    if axis is None:
        return None
    if isinstance(axis, int):
        return (axis % ndim,)
    return tuple(a % ndim for a in axis)


def _expand_reduced(grad: np.ndarray, shape: tuple[int, ...], axis) -> np.ndarray:
    """Reshape a reduced (keepdims=False) gradient so it broadcasts back."""
    if axis is None:
        return np.broadcast_to(grad, shape)
    expanded_shape = list(shape)
    for a in axis:
        expanded_shape[a] = 1
    return np.broadcast_to(grad.reshape(expanded_shape), shape)


def sum(x: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum over the given axes (numpy semantics)."""
    x = as_tensor(x)
    axes = _normalize_axis(axis, x.ndim)
    out_data = x.data.sum(axis=axes, keepdims=keepdims)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        if keepdims or axes is None and g.ndim == x.ndim:
            return np.broadcast_to(g, x.shape)
        return _expand_reduced(g, x.shape, axes)

    return Tensor._make(out_data, [(x, grad_fn)], "sum", extras=(axes, keepdims))


def mean(x: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Arithmetic mean over the given axes."""
    x = as_tensor(x)
    axes = _normalize_axis(axis, x.ndim)
    if axes is None:
        count = x.size
    else:
        count = int(np.prod([x.shape[a] for a in axes]))
    out_data = x.data.mean(axis=axes, keepdims=keepdims)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        if keepdims:
            return np.broadcast_to(g, x.shape) / count
        return _expand_reduced(g, x.shape, axes) / count

    return Tensor._make(out_data, [(x, grad_fn)], "mean", extras=(axes, keepdims))


def var(x: Tensor, axis=None, keepdims: bool = False, ddof: int = 0) -> Tensor:
    """Variance, differentiable, composed from primitive ops."""
    x = as_tensor(x)
    axes = _normalize_axis(axis, x.ndim)
    if axes is None:
        count = x.size
    else:
        count = int(np.prod([x.shape[a] for a in axes]))
    centered = x - mean(x, axis=axis, keepdims=True)
    total = sum(centered * centered, axis=axis, keepdims=keepdims)
    return total * (1.0 / _builtin_max(count - ddof, 1))


def std(x: Tensor, axis=None, keepdims: bool = False, ddof: int = 0, eps: float = 0.0) -> Tensor:
    """Standard deviation; ``eps`` is added under the square root."""
    from repro.autograd.math_ops import sqrt

    return sqrt(var(x, axis=axis, keepdims=keepdims, ddof=ddof) + eps)


def _extreme(x: Tensor, axis, keepdims: bool, np_fn, name: str) -> Tensor:
    x = as_tensor(x)
    axes = _normalize_axis(axis, x.ndim)
    out_data = np_fn(x.data, axis=axes, keepdims=keepdims)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        out_keep = np_fn(x.data, axis=axes, keepdims=True)
        mask = x.data == out_keep
        # Split gradient evenly among ties so the sum over ties matches g.
        counts = mask.sum(axis=axes, keepdims=True)
        if keepdims:
            g_keep = np.broadcast_to(g, out_keep.shape)
        elif axes is None:
            g_keep = np.asarray(g).reshape((1,) * x.ndim)
        else:
            reduced_shape = list(x.shape)
            for a in axes:
                reduced_shape[a] = 1
            g_keep = np.asarray(g).reshape(reduced_shape)
        return np.broadcast_to(g_keep, x.shape) * mask / counts

    return Tensor._make(out_data, [(x, grad_fn)], name, extras=(axes, keepdims))


def max(x: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Maximum over axes; ties split the gradient evenly."""
    return _extreme(x, axis, keepdims, np.max, "max")


def min(x: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Minimum over axes; ties split the gradient evenly."""
    return _extreme(x, axis, keepdims, np.min, "min")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exped = np.exp(shifted)
    out_data = exped / exped.sum(axis=axis, keepdims=True)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        return out_data * (g - dot)

    return Tensor._make(out_data, [(x, grad_fn)], "softmax", extras=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log of the softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse
    soft = np.exp(out_data)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        return g - soft * g.sum(axis=axis, keepdims=True)

    return Tensor._make(out_data, [(x, grad_fn)], "log_softmax", extras=axis)


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Stable log-sum-exp reduction along ``axis``."""
    x = as_tensor(x)
    shifted_max = x.data.max(axis=axis, keepdims=True)
    out_keep = shifted_max + np.log(np.exp(x.data - shifted_max).sum(axis=axis, keepdims=True))
    out_data = out_keep if keepdims else np.squeeze(out_keep, axis=axis)
    soft = np.exp(x.data - out_keep)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        g_keep = g if keepdims else np.expand_dims(g, axis=axis)
        return soft * g_keep

    return Tensor._make(out_data, [(x, grad_fn)], "logsumexp", extras=(axis, keepdims))
