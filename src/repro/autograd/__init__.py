"""Reverse-mode automatic differentiation engine on numpy.

This subpackage is the deep-learning substrate of the FOCUS reproduction.
The original paper trains its models with PyTorch; PyTorch is not available
in this environment, so an equivalent (if smaller) engine is implemented
from scratch: a :class:`Tensor` that records the computation graph and a
topological-sort backward pass that accumulates gradients, with the same
broadcasting semantics as numpy.

Public surface:

- :class:`Tensor` and the creation helpers (:func:`tensor`, :func:`zeros`,
  :func:`ones`, :func:`randn`, :func:`arange`).
- Functional ops re-exported from the op modules (``matmul``, ``softmax``,
  ``relu``, ``concat`` ...); most are also available as ``Tensor`` methods.
- :func:`no_grad` context manager and :func:`is_grad_enabled`.
- Precision modes: :func:`set_default_dtype`, :func:`get_default_dtype`
  and the :func:`default_dtype` context manager (float32/float64 runs).
- :func:`legacy_accumulation` to benchmark against the historical
  allocate-per-accumulation backward pass.
- :func:`gradcheck` for verifying analytic gradients numerically.
"""

from repro.autograd.tensor import (
    Tensor,
    arange,
    as_tensor,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    legacy_accumulation,
    no_grad,
    ones,
    ones_like,
    randn,
    set_default_dtype,
    tensor,
    zeros,
    zeros_like,
)
from repro.autograd.math_ops import (
    abs,  # noqa: A004 - intentional shadow, mirrors numpy's namespace
    clip,
    cos,
    erf,
    exp,
    gelu,
    leaky_relu,
    log,
    maximum,
    minimum,
    relu,
    sigmoid,
    silu,
    sin,
    softplus,
    sqrt,
    tanh,
    where,
)
from repro.autograd.reduce_ops import (
    logsumexp,
    log_softmax,
    max,  # noqa: A004
    mean,
    min,  # noqa: A004
    softmax,
    std,
    sum,  # noqa: A004
    var,
)
from repro.autograd.shape_ops import (
    broadcast_to,
    concat,
    expand_dims,
    flatten,
    gather,
    pad,
    repeat,
    reshape,
    split,
    squeeze,
    stack,
    swapaxes,
    transpose,
    unsqueeze,
)
from repro.autograd.linalg_ops import matmul, outer
from repro.autograd.grad_check import gradcheck
from repro.autograd.capture import GraphCapture, active_capture, capture_graph

__all__ = [
    "Tensor",
    "tensor",
    "as_tensor",
    "zeros",
    "zeros_like",
    "ones",
    "ones_like",
    "randn",
    "arange",
    "no_grad",
    "is_grad_enabled",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "legacy_accumulation",
    "gradcheck",
    "GraphCapture",
    "active_capture",
    "capture_graph",
    # math
    "abs",
    "clip",
    "cos",
    "erf",
    "exp",
    "gelu",
    "leaky_relu",
    "log",
    "maximum",
    "minimum",
    "relu",
    "sigmoid",
    "silu",
    "sin",
    "softplus",
    "sqrt",
    "tanh",
    "where",
    # reductions
    "logsumexp",
    "log_softmax",
    "max",
    "mean",
    "min",
    "softmax",
    "std",
    "sum",
    "var",
    # shape
    "broadcast_to",
    "concat",
    "expand_dims",
    "flatten",
    "gather",
    "pad",
    "repeat",
    "reshape",
    "split",
    "squeeze",
    "stack",
    "swapaxes",
    "transpose",
    "unsqueeze",
    # linalg
    "matmul",
    "outer",
]
