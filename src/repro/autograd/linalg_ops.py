"""Linear-algebra operations with batched-matmul gradients."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, as_tensor, unbroadcast


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product following ``numpy.matmul`` semantics.

    Supports 1-D operands (vector dot / matrix-vector) and arbitrary
    broadcast batch dimensions, with gradients reduced back to each
    operand's shape.
    """
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data @ b.data

    def grad_a(g: np.ndarray) -> np.ndarray:
        if a.ndim == 1 and b.ndim == 1:
            return g * b.data
        if a.ndim == 1:
            # (k,) @ (..., k, n) -> (..., n); grad_a = sum over batch of B g
            ga = (b.data @ np.expand_dims(g, -1)).squeeze(-1)
            return unbroadcast(ga, a.shape)
        if b.ndim == 1:
            # (..., m, k) @ (k,) -> (..., m)
            ga = np.expand_dims(g, -1) * b.data
            return unbroadcast(ga, a.shape)
        ga = g @ np.swapaxes(b.data, -1, -2)
        return unbroadcast(ga, a.shape)

    def grad_b(g: np.ndarray) -> np.ndarray:
        if a.ndim == 1 and b.ndim == 1:
            return g * a.data
        if a.ndim == 1:
            gb = np.expand_dims(a.data, -1) * np.expand_dims(g, -2)
            return unbroadcast(gb, b.shape)
        if b.ndim == 1:
            gb = np.swapaxes(a.data, -1, -2) @ np.expand_dims(g, -1)
            return unbroadcast(gb.squeeze(-1) if gb.ndim > b.ndim else gb, b.shape)
        gb = np.swapaxes(a.data, -1, -2) @ g
        return unbroadcast(gb, b.shape)

    return Tensor._make(out_data, [(a, grad_a), (b, grad_b)], "matmul")


def outer(a: Tensor, b: Tensor) -> Tensor:
    """Outer product of two vectors."""
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("outer() expects 1-D tensors")
    return Tensor._make(
        np.outer(a.data, b.data),
        [(a, lambda g: g @ b.data), (b, lambda g: g.T @ a.data)],
        "outer",
    )
