"""Core :class:`Tensor` type and the backward machinery.

A ``Tensor`` wraps a ``numpy.ndarray`` and, when gradients are enabled,
records how it was produced: every differentiable operation attaches a list
of ``(parent, grad_fn)`` pairs to its output, where ``grad_fn`` maps the
gradient flowing into the output to the gradient contribution for that
parent.  :meth:`Tensor.backward` walks the graph in reverse topological
order and accumulates contributions into ``Tensor.grad``.

Broadcasting follows numpy semantics; gradients of broadcast operands are
reduced back to the operand's shape via :func:`unbroadcast`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Sequence

import numpy as np

DEFAULT_DTYPE = np.float64

_GRAD_STATE = threading.local()
_DTYPE_STATE = threading.local()

# Optional op-level observer used by repro.profiling: when set, every op
# construction reports (op_name, output_shape, parent_shapes, dtype).
# Observers that additionally set ``wants_backward = True`` also receive
# one ``"<op>.bwd"`` event per interior node processed by ``backward()``.
_OP_OBSERVER = None

# Optional allocation observer: called with the byte size of every fresh
# gradient/optimizer buffer the engine allocates (see repro.profiling).
_ALLOC_OBSERVER = None

# Graph capture (repro.autograd.capture / repro.engine): while a capture is
# active on a thread, every op construction and every leaf-Tensor birth is
# reported to it so the forward can be lowered to a replayable plan.  The
# global counter is a fast guard so the uncaptured hot path pays one module
# lookup instead of a thread-local getattr per op.
_CAPTURE_COUNT = 0
_CAPTURE_STATE = threading.local()


def active_capture():
    """Return the GraphCapture recording on this thread, or None."""
    if _CAPTURE_COUNT == 0:
        return None
    return getattr(_CAPTURE_STATE, "capture", None)


def _set_capture(capture) -> None:
    """Install (or clear, with None) this thread's graph capture."""
    global _CAPTURE_COUNT
    previous = getattr(_CAPTURE_STATE, "capture", None)
    if capture is not None and previous is not None:
        raise RuntimeError("a graph capture is already active on this thread")
    _CAPTURE_STATE.capture = capture
    if capture is not None:
        _CAPTURE_COUNT += 1
    elif previous is not None:
        _CAPTURE_COUNT -= 1


def set_op_observer(observer) -> None:
    """Install (or clear, with None) the global op observer."""
    global _OP_OBSERVER
    _OP_OBSERVER = observer


def get_op_observer():
    """Return the currently installed op observer (or None)."""
    return _OP_OBSERVER


def set_alloc_observer(observer) -> None:
    """Install (or clear, with None) the engine allocation observer.

    The observer is called as ``observer(nbytes)`` once per buffer the
    backward pass or an in-place optimizer allocates.  Forward-op outputs
    are *not* reported here (they are op outputs, not engine temporaries).
    """
    global _ALLOC_OBSERVER
    _ALLOC_OBSERVER = observer


def get_alloc_observer():
    """Return the currently installed allocation observer (or None)."""
    return _ALLOC_OBSERVER


def note_alloc(array: np.ndarray) -> None:
    """Report one engine-owned buffer allocation to the observer, if any."""
    if _ALLOC_OBSERVER is not None:
        _ALLOC_OBSERVER(array.nbytes)


def is_grad_enabled() -> bool:
    """Return True when operations should record the autograd graph."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like torch.no_grad)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def inplace_accumulation_enabled() -> bool:
    """True when ``backward()`` may reuse/donate gradient buffers."""
    return getattr(_GRAD_STATE, "inplace", True)


@contextlib.contextmanager
def legacy_accumulation():
    """Force the pre-optimization allocate-per-accumulation backward path.

    Kept for the allocation benchmark and for bit-stability regression
    tests: the legacy path reproduces the original engine's behavior
    (fresh ``a + b`` buffers on every gradient accumulation).
    """
    previous = inplace_accumulation_enabled()
    _GRAD_STATE.inplace = False
    try:
        yield
    finally:
        _GRAD_STATE.inplace = previous


# ----------------------------------------------------------------------
# Precision modes
# ----------------------------------------------------------------------
def get_default_dtype() -> np.dtype:
    """The floating dtype new tensors are created with (float64 unless set)."""
    return getattr(_DTYPE_STATE, "dtype", None) or np.dtype(DEFAULT_DTYPE)


def set_default_dtype(dtype) -> None:
    """Set the engine-wide default floating dtype (e.g. ``'float32'``)."""
    dtype = np.dtype(dtype)
    if dtype.kind != "f":
        raise ValueError(f"default dtype must be a float dtype, got {dtype}")
    _DTYPE_STATE.dtype = dtype


@contextlib.contextmanager
def default_dtype(dtype):
    """Context manager scoping :func:`set_default_dtype` to a block."""
    previous = getattr(_DTYPE_STATE, "dtype", None)
    set_default_dtype(dtype)
    try:
        yield
    finally:
        _DTYPE_STATE.dtype = previous


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (shape produced by broadcasting) back to ``shape``.

    Sums over the leading axes numpy added and over any axis that was
    expanded from size 1.
    """
    return _unbroadcast(grad, shape)[0]


def _unbroadcast(
    grad: np.ndarray, shape: tuple[int, ...], out: np.ndarray | None = None
) -> tuple[np.ndarray, bool]:
    """:func:`unbroadcast` plus a flag marking freshly-allocated results.

    When ``out`` (an owned scratch of target ``shape``/dtype) is given and
    a single reduction stage suffices, the sum is written into it instead
    of a new array.  The reduction order matches the historical two-stage
    implementation exactly, so results are bit-identical.
    """
    if grad.shape == shape:
        return grad, False
    fresh = False
    # Sum away leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        lead = tuple(range(extra))
        trailing = grad.shape[extra:]
        needs_second = any(
            n == 1 and trailing[i] != 1 for i, n in enumerate(shape)
        )
        if not needs_second and out is not None:
            np.sum(grad, axis=lead, out=out)
            return out, True
        grad = grad.sum(axis=lead)
        note_alloc(grad)
        fresh = True
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        if out is not None and not fresh:
            np.sum(grad, axis=axes, keepdims=True, out=out)
            return out, True
        grad = grad.sum(axis=axes, keepdims=True)
        note_alloc(grad)
        fresh = True
    if grad.shape != shape:
        grad = grad.reshape(shape)
    return grad, fresh


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``numpy.ndarray`` of float dtype.
    requires_grad:
        When True, ``backward()`` will populate :attr:`grad` for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_op_name")
    __array_priority__ = 100  # make numpy defer to Tensor.__r*__ operators

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        if dtype is not None:
            self.data = np.asarray(data, dtype=dtype)
        elif isinstance(data, np.ndarray) and data.dtype.kind == "f":
            # Already a float ndarray: keep its storage and dtype as-is
            # (no silent upcast to the default dtype).
            self.data = data
        elif isinstance(data, np.floating):
            # Numpy float scalar (e.g. a full reduction): keep its dtype so
            # float32 losses stay float32.
            self.data = np.asarray(data)
        else:
            self.data = np.asarray(data, dtype=get_default_dtype())
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        # list of (parent Tensor, grad_fn: ndarray -> ndarray) pairs
        self._parents: list[tuple["Tensor", Callable[[np.ndarray], np.ndarray]]] = []
        self._op_name: str = "leaf"
        if _CAPTURE_COUNT:
            capture = getattr(_CAPTURE_STATE, "capture", None)
            if capture is not None:
                capture.record_birth(self)

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence[tuple["Tensor", Callable[[np.ndarray], np.ndarray]]],
        op_name: str,
        extras=None,
    ) -> "Tensor":
        """Create an op output, wiring in parents when autograd is on.

        ``extras`` carries the non-Tensor op arguments (reduction axes,
        transpose permutations, clip bounds, ...) that a graph capture
        needs to replay the op; it is ignored when no capture is active.
        """
        if _OP_OBSERVER is not None:
            _OP_OBSERVER(
                op_name,
                np.shape(data),
                [p.shape for p, _ in parents],
                getattr(data, "dtype", None),
            )
        tracked = [(p, fn) for p, fn in parents if p.requires_grad]
        out = Tensor(data, requires_grad=bool(tracked) and is_grad_enabled())
        if out.requires_grad:
            out._parents = tracked
            out._op_name = op_name
        if _CAPTURE_COUNT:
            capture = getattr(_CAPTURE_STATE, "capture", None)
            if capture is not None:
                capture.record_op(out, [p for p, _ in parents], op_name, extras)
        return out

    @classmethod
    def _wrap(cls, array: np.ndarray) -> "Tensor":
        """Wrap an ndarray verbatim (no cast, no copy) as a graph leaf."""
        out = cls.__new__(cls)
        out.data = array
        out.requires_grad = False
        out.grad = None
        out._parents = []
        out._op_name = "leaf"
        if _CAPTURE_COUNT:
            capture = getattr(_CAPTURE_STATE, "capture", None)
            if capture is not None:
                capture.record_birth(out)
        return out

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        from repro.autograd.shape_ops import transpose

        return transpose(self)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing this storage, cut off from the graph.

        The result shares memory with ``self`` and preserves the dtype
        exactly — it never re-casts through the default dtype.
        """
        return Tensor._wrap(self.data)

    def copy(self) -> "Tensor":
        """Return a detached deep copy (same dtype, new storage)."""
        return Tensor._wrap(self.data.copy())

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar outputs; non-scalar roots require
        an explicit gradient of matching shape.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        inplace = inplace_accumulation_enabled()
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be specified for non-scalar outputs")
            root = np.ones_like(self.data)
            note_alloc(root)
            root_owned = True
        else:
            supplied = grad
            root = np.asarray(grad, dtype=self.data.dtype)
            # A fresh cast/conversion is ours to consume; a pass-through of
            # the caller's array is not (they may reuse it).
            root_owned = root is not supplied and root.base is None
            if root_owned:
                note_alloc(root)
        if root.shape != self.data.shape:
            root = np.broadcast_to(root, self.data.shape).copy()
            note_alloc(root)
            root_owned = True

        observer = _OP_OBSERVER
        if observer is not None and not getattr(observer, "wants_backward", False):
            observer = None

        topo = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): root}
        # ids of grads entries whose buffer this pass may mutate or donate
        owned: set[int] = {id(self)} if (inplace and root_owned) else set()
        # per-(shape, dtype) scratch reused by unbroadcast reductions that
        # are immediately folded into an existing accumulation buffer
        scratch: dict[tuple, np.ndarray] = {}
        for node in topo:
            node_key = id(node)
            node_grad = grads.pop(node_key, None)
            if node_grad is None:
                continue
            node_owned = node_key in owned
            owned.discard(node_key)
            if not node._parents:
                # Leaf: accumulate into .grad
                if node.grad is None:
                    if node_owned:
                        node.grad = node_grad  # donate the owned buffer
                    else:
                        node.grad = node_grad.copy()
                        note_alloc(node.grad)
                elif (
                    inplace
                    and node.grad.base is None
                    and node.grad.flags.owndata
                    and node.grad.flags.writeable
                ):
                    np.add(node.grad, node_grad, out=node.grad)
                else:
                    node.grad = node.grad + node_grad
                    note_alloc(node.grad)
                continue
            if observer is not None:
                observer(
                    node._op_name + ".bwd",
                    node.data.shape,
                    [p.shape for p, _ in node._parents],
                    node.data.dtype,
                )
            # Interior node: the root (and retained grads) keep their own .grad
            if node is self or node.grad is not None:
                if node.grad is None:
                    node.grad = node_grad
                else:
                    node.grad = node.grad + node_grad
                    note_alloc(node.grad)
            for parent, grad_fn in node._parents:
                raw = grad_fn(node_grad)
                arr = np.asarray(raw, dtype=parent.data.dtype)
                shape = parent.data.shape
                key = id(parent)
                existing = grads.get(key)
                if not inplace:
                    reduced = unbroadcast(arr, shape)
                    if existing is None:
                        grads[key] = reduced
                    else:
                        grads[key] = existing + reduced
                        note_alloc(grads[key])
                    continue
                if existing is None:
                    if arr.shape != shape:
                        arr, _ = _unbroadcast(arr, shape)
                    grads[key] = arr
                    if (
                        arr is not node_grad
                        and arr.base is None
                        and arr.flags.owndata
                        and arr.flags.writeable
                    ):
                        owned.add(key)
                    continue
                if key in owned:
                    if arr.shape != shape:
                        buf = scratch.get((shape, arr.dtype.str))
                        if buf is None:
                            buf = np.empty(shape, dtype=arr.dtype)
                            note_alloc(buf)
                            scratch[(shape, arr.dtype.str)] = buf
                        arr, _ = _unbroadcast(arr, shape, out=buf)
                    np.add(existing, arr, out=existing)
                    continue
                if arr.shape != shape:
                    arr, _ = _unbroadcast(arr, shape)
                if (
                    arr is not node_grad
                    and arr.base is None
                    and arr.flags.owndata
                    and arr.flags.writeable
                ):
                    # existing + arr, written into the fresh contribution
                    np.add(existing, arr, out=arr)
                    grads[key] = arr
                else:
                    grads[key] = existing + arr
                    note_alloc(grads[key])
                owned.add(key)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic operators
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _operand(other, self.data.dtype)
        return Tensor._make(
            self.data + other.data,
            [(self, lambda g: g), (other, lambda g: g)],
            "add",
        )

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = _operand(other, self.data.dtype)
        return Tensor._make(
            self.data - other.data,
            [(self, lambda g: g), (other, lambda g: -g)],
            "sub",
        )

    def __rsub__(self, other) -> "Tensor":
        return _operand(other, self.data.dtype).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = _operand(other, self.data.dtype)
        return Tensor._make(
            self.data * other.data,
            [(self, lambda g: g * other.data), (other, lambda g: g * self.data)],
            "mul",
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _operand(other, self.data.dtype)
        return Tensor._make(
            self.data / other.data,
            [
                (self, lambda g: g / other.data),
                (other, lambda g: -g * self.data / (other.data**2)),
            ],
            "div",
        )

    def __rtruediv__(self, other) -> "Tensor":
        return _operand(other, self.data.dtype).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, [(self, lambda g: -g)], "neg")

    def __pow__(self, exponent) -> "Tensor":
        if isinstance(exponent, Tensor):
            base, expo = self, exponent
            out_data = base.data**expo.data
            return Tensor._make(
                out_data,
                [
                    (base, lambda g: g * expo.data * base.data ** (expo.data - 1)),
                    (expo, lambda g: g * out_data * np.log(base.data)),
                ],
                "pow",
            )
        exponent = float(exponent)
        return Tensor._make(
            self.data**exponent,
            [(self, lambda g: g * exponent * self.data ** (exponent - 1))],
            "pow_const",
            extras=exponent,
        )

    def __matmul__(self, other) -> "Tensor":
        from repro.autograd.linalg_ops import matmul

        return matmul(self, other)

    def __rmatmul__(self, other) -> "Tensor":
        from repro.autograd.linalg_ops import matmul

        return matmul(as_tensor(other), self)

    # ------------------------------------------------------------------
    # Comparison operators (non-differentiable, return plain ndarrays)
    # ------------------------------------------------------------------
    def __lt__(self, other):
        return self.data < _raw(other)

    def __le__(self, other):
        return self.data <= _raw(other)

    def __gt__(self, other):
        return self.data > _raw(other)

    def __ge__(self, other):
        return self.data >= _raw(other)

    def __eq__(self, other):  # type: ignore[override]
        return self.data == _raw(other)

    def __ne__(self, other):  # type: ignore[override]
        return self.data != _raw(other)

    def __hash__(self):
        return id(self)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def grad_fn(g: np.ndarray) -> np.ndarray:
            full = np.zeros_like(self.data)
            np.add.at(full, index, g)
            return full

        return Tensor._make(out_data, [(self, grad_fn)], "getitem", extras=index)

    # ------------------------------------------------------------------
    # Method-style access to functional ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        from repro.autograd.shape_ops import reshape

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        from repro.autograd.shape_ops import transpose

        return transpose(self, axes)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        from repro.autograd.shape_ops import swapaxes

        return swapaxes(self, axis1, axis2)

    def flatten(self) -> "Tensor":
        from repro.autograd.shape_ops import flatten

        return flatten(self)

    def squeeze(self, axis: int | None = None) -> "Tensor":
        from repro.autograd.shape_ops import squeeze

        return squeeze(self, axis)

    def unsqueeze(self, axis: int) -> "Tensor":
        from repro.autograd.shape_ops import unsqueeze

        return unsqueeze(self, axis)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd.reduce_ops import sum as _sum

        return _sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd.reduce_ops import mean

        return mean(self, axis=axis, keepdims=keepdims)

    def var(self, axis=None, keepdims: bool = False, ddof: int = 0) -> "Tensor":
        from repro.autograd.reduce_ops import var

        return var(self, axis=axis, keepdims=keepdims, ddof=ddof)

    def std(self, axis=None, keepdims: bool = False, ddof: int = 0) -> "Tensor":
        from repro.autograd.reduce_ops import std

        return std(self, axis=axis, keepdims=keepdims, ddof=ddof)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd.reduce_ops import max as _max

        return _max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        from repro.autograd.reduce_ops import min as _min

        return _min(self, axis=axis, keepdims=keepdims)

    def exp(self) -> "Tensor":
        from repro.autograd.math_ops import exp

        return exp(self)

    def log(self) -> "Tensor":
        from repro.autograd.math_ops import log

        return log(self)

    def sqrt(self) -> "Tensor":
        from repro.autograd.math_ops import sqrt

        return sqrt(self)

    def abs(self) -> "Tensor":
        from repro.autograd.math_ops import abs as _abs

        return _abs(self)

    def tanh(self) -> "Tensor":
        from repro.autograd.math_ops import tanh

        return tanh(self)

    def sigmoid(self) -> "Tensor":
        from repro.autograd.math_ops import sigmoid

        return sigmoid(self)

    def relu(self) -> "Tensor":
        from repro.autograd.math_ops import relu

        return relu(self)

    def clip(self, low: float | None = None, high: float | None = None) -> "Tensor":
        from repro.autograd.math_ops import clip

        return clip(self, low, high)

    def softmax(self, axis: int = -1) -> "Tensor":
        from repro.autograd.reduce_ops import softmax

        return softmax(self, axis=axis)

    def matmul(self, other) -> "Tensor":
        return self.__matmul__(other)


def _raw(value) -> np.ndarray:
    return value.data if isinstance(value, Tensor) else np.asarray(value)


def _topological_order(root: Tensor) -> list[Tensor]:
    """Return tensors reachable from ``root`` in reverse topological order."""
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent, _ in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order


# ----------------------------------------------------------------------
# Creation helpers
# ----------------------------------------------------------------------
def tensor(data, requires_grad: bool = False, dtype=None) -> Tensor:
    """Create a new Tensor (copies data; float ndarrays keep their dtype)."""
    if dtype is None and isinstance(data, np.ndarray) and data.dtype.kind == "f":
        return Tensor(data.copy(), requires_grad=requires_grad)
    return Tensor(
        np.array(data, dtype=dtype or get_default_dtype()), requires_grad=requires_grad
    )


def as_tensor(data) -> Tensor:
    """Coerce to Tensor without copying when already one."""
    if isinstance(data, Tensor):
        return data
    out = Tensor(data)
    if _CAPTURE_COUNT and (
        np.isscalar(data) or (isinstance(data, np.ndarray) and data.ndim == 0)
    ):
        capture = getattr(_CAPTURE_STATE, "capture", None)
        if capture is not None:
            # Scalar arguments to functional ops (ag.maximum(x, 0.0),
            # eps constants) come from the source text, never from the
            # traced input — safe to bake, same as ``_operand``.
            capture.bless(out)
    return out


def _operand(value, dtype) -> Tensor:
    """Coerce a binary-op operand; scalars adopt the tensor's ``dtype``.

    Python/numpy scalars are "weak": wrapping them at the ambient default
    dtype would silently promote a float32 graph back to float64 whenever
    an op mixes in a constant (eps, scale factors), so they take the dtype
    of the Tensor they combine with instead.
    """
    if isinstance(value, Tensor):
        return value
    if np.isscalar(value) or (isinstance(value, np.ndarray) and value.ndim == 0):
        out = Tensor._wrap(np.asarray(value, dtype=dtype))
        if _CAPTURE_COUNT:
            capture = getattr(_CAPTURE_STATE, "capture", None)
            if capture is not None:
                # A scalar operand's value comes from the source text (eps,
                # scale factors), never from the traced input — safe to bake.
                capture.bless(out)
        return out
    return Tensor(value)


def zeros(shape, requires_grad: bool = False, dtype=None) -> Tensor:
    """All-zeros tensor of the given shape."""
    return Tensor(
        np.zeros(shape, dtype=dtype or get_default_dtype()), requires_grad=requires_grad
    )


def zeros_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    """All-zeros tensor shaped (and typed) like ``t``."""
    return Tensor(np.zeros_like(_raw(t)), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False, dtype=None) -> Tensor:
    """All-ones tensor of the given shape."""
    return Tensor(
        np.ones(shape, dtype=dtype or get_default_dtype()), requires_grad=requires_grad
    )


def ones_like(t: Tensor, requires_grad: bool = False) -> Tensor:
    """All-ones tensor shaped (and typed) like ``t``."""
    return Tensor(np.ones_like(_raw(t)), requires_grad=requires_grad)


def randn(
    *shape,
    rng: np.random.Generator | None = None,
    requires_grad: bool = False,
    dtype=None,
) -> Tensor:
    """Standard-normal tensor (pass ``rng`` for determinism)."""
    generator = rng or np.random.default_rng()
    sample = generator.standard_normal(shape).astype(
        dtype or get_default_dtype(), copy=False
    )
    return Tensor(sample, requires_grad=requires_grad)


def arange(*args, requires_grad: bool = False, dtype=None) -> Tensor:
    """Float range tensor (numpy.arange semantics)."""
    return Tensor(
        np.arange(*args, dtype=dtype or get_default_dtype()), requires_grad=requires_grad
    )
