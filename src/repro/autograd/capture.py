"""Graph capture: record one forward pass as a replayable op trace.

While a :class:`GraphCapture` is active on a thread (via
:func:`capture_graph`), every op built through ``Tensor._make`` is
recorded in construction order — which is already a topological order of
the data-flow graph — together with its parent tensors and the
non-Tensor arguments (``extras``) the op needs to run again.  The
recording is the input to :mod:`repro.engine`, which lowers it to a flat
:class:`~repro.engine.ExecutionPlan` with no Tensor wrappers and no grad
bookkeeping.

Capture also tracks every *leaf* Tensor born while it is active.  A leaf
created mid-forward from raw numpy data is the one thing a trace cannot
replay safely: its value may depend on the traced input (e.g. a hard
assignment matrix), and baking it into the plan would silently freeze
one input's data into every future replay.  Plan compilation therefore
rejects any traced leaf that was born during capture unless it was
explicitly blessed as input-independent (scalar operands are blessed
automatically; model code blesses buffers via :meth:`GraphCapture.constant`
or routes data-dependent values through :meth:`GraphCapture.custom`).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor, _set_capture, active_capture

__all__ = ["CapturedNode", "GraphCapture", "capture_graph", "active_capture"]


class CapturedNode:
    """One recorded op: output tensor, parent tensors, and replay info.

    ``replay`` is None for ordinary ops (the plan compiler looks the
    kernel up by ``op_name``); custom nodes carry their own replay
    callable ``replay(srcs, out, scratch, extras) -> ndarray``.
    """

    __slots__ = ("index", "tensor", "parents", "op_name", "extras", "replay")

    def __init__(
        self,
        index: int,
        tensor: Tensor,
        parents: Sequence[Tensor],
        op_name: str,
        extras,
        replay: Callable | None = None,
    ):
        self.index = index
        self.tensor = tensor
        self.parents = list(parents)
        self.op_name = op_name
        self.extras = extras
        self.replay = replay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CapturedNode({self.index}, {self.op_name}, "
            f"out={self.tensor.shape}, parents={len(self.parents)})"
        )


class GraphCapture:
    """Recording of one forward pass, keyed by tensor identity.

    All recorded tensors (op outputs, parents, leaf births) are held by
    strong reference for the lifetime of the capture so ``id()`` keys
    stay unique — a garbage-collected tensor could otherwise hand its
    address to an unrelated later tensor and corrupt the trace.
    """

    def __init__(self):
        self.nodes: dict[int, CapturedNode] = {}
        self.order: list[CapturedNode] = []
        # id -> Tensor for every Tensor born during capture (strong refs).
        self.births: dict[int, Tensor] = {}
        # ids of born leaves that are known input-independent.
        self.blessed: set[int] = set()
        # ids of the traced input tensors (dynamic leaves).
        self.input_ids: set[int] = set()

    # -- hooks called from repro.autograd.tensor ------------------------
    def record_op(self, out: Tensor, parents: Sequence[Tensor], op_name: str, extras):
        node = CapturedNode(len(self.order), out, parents, op_name, extras)
        self.nodes[id(out)] = node
        self.order.append(node)

    def record_birth(self, tensor: Tensor) -> None:
        self.births[id(tensor)] = tensor

    def bless(self, tensor: Tensor) -> None:
        """Mark a born leaf as input-independent (safe to bake into a plan)."""
        self.births[id(tensor)] = tensor
        self.blessed.add(id(tensor))

    # -- model-facing API ------------------------------------------------
    def mark_input(self, tensor: Tensor) -> None:
        """Declare ``tensor`` a traced input (replay substitutes its data)."""
        self.births[id(tensor)] = tensor
        self.input_ids.add(id(tensor))

    def constant(self, array: np.ndarray) -> Tensor:
        """Wrap a live parameter/buffer array as a blessed graph leaf."""
        out = Tensor._wrap(array)
        self.bless(out)
        return out

    def custom(
        self,
        op_name: str,
        out_data: np.ndarray,
        parents: Sequence[Tensor],
        replay: Callable,
        extras=None,
    ) -> Tensor:
        """Record a data-dependent computation with its own replay closure.

        ``replay(srcs, out, scratch, extras)`` receives the replayed
        parent arrays (same order as ``parents``) and must return the
        node's value, recomputing anything input-dependent from them.
        """
        out = Tensor._wrap(out_data)
        node = CapturedNode(len(self.order), out, parents, op_name, extras, replay)
        self.nodes[id(out)] = node
        self.order.append(node)
        return out


@contextlib.contextmanager
def capture_graph():
    """Record all ops built on this thread into a fresh GraphCapture."""
    capture = GraphCapture()
    _set_capture(capture)
    try:
        yield capture
    finally:
        _set_capture(None)
