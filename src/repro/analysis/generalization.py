"""Unseen-segment analysis for the generalization study (paper Sec. VIII-D).

Test windows are scored by how far their segments fall from the training
segment distribution (distance to the nearest training prototype,
normalized by the training split's own distance distribution).  The
highest-scoring windows are the "instances containing unseen segments"
on which the paper compares FOCUS and PatchTST (Fig. 9).
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering import SegmentClusterer, composite_distance
from repro.data.segments import segment_series
from repro.data.windows import SlidingWindowDataset


def unseen_segment_scores(
    clusterer: SegmentClusterer,
    train_data: np.ndarray,
    windows: SlidingWindowDataset,
) -> np.ndarray:
    """Score each test window by its most-unseen segment.

    The score is the window's maximum nearest-prototype distance divided
    by the 95th percentile of training-segment distances: scores > 1 mean
    the window contains shapes essentially absent from training.
    """
    cfg = clusterer.config
    train_segments = segment_series(np.asarray(train_data), cfg.segment_length)
    train_dists = composite_distance(
        train_segments, clusterer.prototypes_, cfg.effective_alpha
    ).min(axis=1)
    reference = float(np.quantile(train_dists, 0.95))
    reference = max(reference, 1e-12)

    scores = np.zeros(len(windows))
    for i in range(len(windows)):
        x_window, _ = windows[i]
        segments = segment_series(x_window, cfg.segment_length)
        dists = composite_distance(
            segments, clusterer.prototypes_, cfg.effective_alpha
        ).min(axis=1)
        scores[i] = float(dists.max()) / reference
    return scores


def select_unseen_instances(
    clusterer: SegmentClusterer,
    train_data: np.ndarray,
    windows: SlidingWindowDataset,
    top_fraction: float = 0.1,
) -> np.ndarray:
    """Indices of the most unseen-heavy test windows (descending score)."""
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must lie in (0, 1]")
    scores = unseen_segment_scores(clusterer, train_data, windows)
    count = max(int(round(len(scores) * top_fraction)), 1)
    return np.argsort(scores)[::-1][:count]
