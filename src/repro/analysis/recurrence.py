"""Motif recurrence statistics (the paper's Sec. III motivation).

The motivation for offline clustering is that segment patterns "exhibit
stable recurrence over time and space": the 7-8 AM rush hour looks the
same across days (temporal recurrence) and across similar intersections
(spatial recurrence).  These helpers quantify both on a fitted
:class:`SegmentClusterer`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.clustering import SegmentClusterer
from repro.data.segments import segment_series


@dataclasses.dataclass
class RecurrenceReport:
    """Prototype usage and recurrence statistics for one dataset."""

    usage: np.ndarray  # (k,) fraction of segments per prototype
    temporal_recurrence: float  # same slot-of-day -> same prototype rate
    spatial_recurrence: float  # same slot, different entity -> same prototype rate
    entropy: float  # usage entropy in nats (log k = uniform)


def prototype_usage(clusterer: SegmentClusterer, data: np.ndarray) -> np.ndarray:
    """Fraction of segments assigned to each prototype."""
    labels = clusterer.assign(data)
    counts = np.bincount(labels, minlength=clusterer.config.num_prototypes)
    return counts / max(len(labels), 1)


def _slot_labels(
    clusterer: SegmentClusterer, data: np.ndarray, steps_per_day: int
) -> np.ndarray:
    """Assignment labels arranged as ``(entities, days, slots_per_day)``.

    Trailing partial days are dropped.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError("expected (T, N) data")
    p = clusterer.config.segment_length
    if steps_per_day % p != 0:
        raise ValueError("steps_per_day must be divisible by the segment length")
    slots_per_day = steps_per_day // p
    segments = segment_series(data, p)  # grouped by entity
    labels = clusterer.assign(segments)
    num_entities = data.shape[1]
    per_entity = len(labels) // num_entities
    days = per_entity // slots_per_day
    if days < 1:
        raise ValueError("data shorter than one day")
    trimmed = labels.reshape(num_entities, per_entity)[:, : days * slots_per_day]
    return trimmed.reshape(num_entities, days, slots_per_day)


def temporal_recurrence(
    clusterer: SegmentClusterer, data: np.ndarray, steps_per_day: int
) -> float:
    """How often a (entity, slot-of-day) reuses its dominant prototype.

    1.0 means every day's 7-8 AM (etc.) maps to the same prototype; the
    chance level is the usage-weighted collision probability.
    """
    grid = _slot_labels(clusterer, data, steps_per_day)  # (N, days, slots)
    num_entities, days, slots = grid.shape
    if days < 2:
        raise ValueError("need at least two days for temporal recurrence")
    rates = []
    for entity in range(num_entities):
        for slot in range(slots):
            series = grid[entity, :, slot]
            dominant = np.bincount(series).max()
            rates.append(dominant / days)
    return float(np.mean(rates))


def spatial_recurrence(
    clusterer: SegmentClusterer, data: np.ndarray, steps_per_day: int
) -> float:
    """How often two entities share a prototype at the same time slot."""
    grid = _slot_labels(clusterer, data, steps_per_day)
    num_entities, days, slots = grid.shape
    if num_entities < 2:
        raise ValueError("need at least two entities for spatial recurrence")
    flat = grid.reshape(num_entities, days * slots)
    agreements = []
    for i in range(num_entities):
        for j in range(i + 1, num_entities):
            agreements.append(float((flat[i] == flat[j]).mean()))
    return float(np.mean(agreements))


def recurrence_report(
    clusterer: SegmentClusterer, data: np.ndarray, steps_per_day: int
) -> RecurrenceReport:
    """All recurrence statistics in one pass."""
    usage = prototype_usage(clusterer, data)
    positive = usage[usage > 0]
    entropy = float(-(positive * np.log(positive)).sum())
    return RecurrenceReport(
        usage=usage,
        temporal_recurrence=temporal_recurrence(clusterer, data, steps_per_day),
        spatial_recurrence=spatial_recurrence(clusterer, data, steps_per_day),
        entropy=entropy,
    )
