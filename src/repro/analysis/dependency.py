"""Learned long-range dependency extraction (paper Fig. 13).

The paper visualizes dependencies "obtained by directly multiplying the
assignment matrix with the online correlation matrix": for each segment
``i`` assigned to prototype ``q_i``, its dependency row over all
segments is the attention row of ``q_i``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import autograd as ag
from repro.autograd import Tensor
from repro.core.model import FOCUSForecaster


@dataclasses.dataclass
class DependencyResult:
    """Dependency map of one window's temporal segments."""

    matrix: np.ndarray  # (l, l) averaged over entities
    per_entity: np.ndarray  # (N, l, l)
    assignment: np.ndarray  # (N, l) prototype index per segment


def extract_dependencies(model: FOCUSForecaster, window: np.ndarray) -> DependencyResult:
    """Run one window ``(L, N)`` through FOCUS and return its temporal
    dependency matrices."""
    window = np.asarray(window, dtype=np.float64)
    if window.ndim != 2:
        raise ValueError("expected a single (L, N) window")
    model.eval()
    with ag.no_grad():
        model(Tensor(window[None]))
    per_sequence = model.dependency_matrix()  # (1*N, l, l)
    mixer = model.extractor.temporal_mixer
    assignment = mixer.last_assignment_
    num_entities = model.config.num_entities
    per_entity = per_sequence.reshape(num_entities, *per_sequence.shape[1:])
    return DependencyResult(
        matrix=per_entity.mean(axis=0),
        per_entity=per_entity,
        assignment=assignment.reshape(num_entities, -1),
    )
