"""Per-step error profiles over the forecast horizon.

Long-horizon forecasters degrade as the lead time grows; the *shape* of
that degradation (flat vs exploding) distinguishes models that capture
long-range structure from ones that extrapolate locally.  These helpers
compute MSE/MAE per forecast step and per entity.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import autograd as ag
from repro.autograd import Tensor
from repro.data.windows import SlidingWindowDataset
from repro.nn import Module


@dataclasses.dataclass
class HorizonProfile:
    """Per-lead-time error curves."""

    mse_per_step: np.ndarray  # (L_f,)
    mae_per_step: np.ndarray  # (L_f,)
    mse_per_entity: np.ndarray  # (N,)

    @property
    def degradation(self) -> float:
        """Last-step MSE over first-step MSE (1.0 = flat profile)."""
        first = max(float(self.mse_per_step[0]), 1e-12)
        return float(self.mse_per_step[-1]) / first


def horizon_error_profile(
    model: Module,
    windows: SlidingWindowDataset,
    batch_size: int = 64,
    max_windows: int | None = None,
    stride: int = 1,
) -> HorizonProfile:
    """Evaluate ``model`` and aggregate errors by forecast step / entity."""
    model.eval()
    indices = np.arange(0, len(windows), stride)
    if max_windows is not None:
        indices = indices[:max_windows]
    squared_sum = None
    absolute_sum = None
    count = 0
    with ag.no_grad():
        for start in range(0, len(indices), batch_size):
            batch_idx = indices[start : start + batch_size]
            xs, ys = windows.batch(batch_idx)
            preds = model(Tensor(xs)).data
            err = preds - ys
            sq = (err**2).sum(axis=0)
            ab = np.abs(err).sum(axis=0)
            squared_sum = sq if squared_sum is None else squared_sum + sq
            absolute_sum = ab if absolute_sum is None else absolute_sum + ab
            count += len(batch_idx)
    squared_mean = squared_sum / count  # (L_f, N)
    absolute_mean = absolute_sum / count
    return HorizonProfile(
        mse_per_step=squared_mean.mean(axis=1),
        mae_per_step=absolute_mean.mean(axis=1),
        mse_per_entity=squared_mean.mean(axis=0),
    )
