"""Analysis tooling behind the paper's case studies (Figs. 9, 11-13).

- :mod:`repro.analysis.tsne` — exact t-SNE (the paper uses t-SNE to
  compare train/test segment distributions in Sec. VIII-D);
- :mod:`repro.analysis.approximation` — prototype-based series
  approximation with moment restoration (Fig. 11);
- :mod:`repro.analysis.dependency` — learned long-range dependency
  extraction ``A x attention`` (Fig. 13);
- :mod:`repro.analysis.generalization` — unseen-segment scoring of test
  instances (Fig. 9).
"""

from repro.analysis.tsne import tsne
from repro.analysis.approximation import approximate_series
from repro.analysis.dependency import extract_dependencies
from repro.analysis.generalization import unseen_segment_scores, select_unseen_instances
from repro.analysis.recurrence import (
    prototype_usage,
    recurrence_report,
    spatial_recurrence,
    temporal_recurrence,
)
from repro.analysis.horizon import HorizonProfile, horizon_error_profile
from repro.analysis.attribution import AttributionResult, prototype_importance

__all__ = [
    "tsne",
    "approximate_series",
    "extract_dependencies",
    "unseen_segment_scores",
    "select_unseen_instances",
    "prototype_usage",
    "recurrence_report",
    "spatial_recurrence",
    "temporal_recurrence",
    "HorizonProfile",
    "horizon_error_profile",
    "AttributionResult",
    "prototype_importance",
]
