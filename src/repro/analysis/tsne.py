"""Exact t-SNE (van der Maaten & Hinton, 2008) for small point sets.

Used to embed train/test segments side by side (paper Sec. VIII-D);
exact O(n^2) gradients are fine at the few-hundred-segment scale.
"""

from __future__ import annotations

import numpy as np


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    sq = (x**2).sum(axis=1)
    dists = sq[:, None] + sq[None, :] - 2.0 * x @ x.T
    np.fill_diagonal(dists, 0.0)
    return np.maximum(dists, 0.0)


def _binary_search_sigma(dists_row: np.ndarray, perplexity: float, tol: float = 1e-4) -> np.ndarray:
    """Find the conditional P row with the target perplexity."""
    target_entropy = np.log(perplexity)
    beta_low, beta_high = 1e-12, 1e12
    beta = 1.0
    probabilities = np.zeros_like(dists_row)
    for _ in range(60):
        exponent = -dists_row * beta
        exponent -= exponent.max()
        probabilities = np.exp(exponent)
        probabilities[dists_row == 0.0] = 0.0  # excludes self
        total = probabilities.sum()
        if total <= 0:
            probabilities = np.ones_like(dists_row) / max(len(dists_row) - 1, 1)
            break
        probabilities /= total
        positive = probabilities[probabilities > 1e-12]
        entropy = -(positive * np.log(positive)).sum()
        if abs(entropy - target_entropy) < tol:
            break
        if entropy > target_entropy:
            beta_low = beta
            beta = beta * 2.0 if beta_high >= 1e12 else (beta + beta_high) / 2.0
        else:
            beta_high = beta
            beta = beta / 2.0 if beta_low <= 1e-12 else (beta + beta_low) / 2.0
    return probabilities


def tsne(
    points: np.ndarray,
    n_components: int = 2,
    perplexity: float = 20.0,
    n_iter: int = 300,
    learning_rate: float = 100.0,
    seed: int = 0,
    early_exaggeration: float = 4.0,
) -> np.ndarray:
    """Embed ``(n, d)`` points into ``(n, n_components)`` with exact t-SNE."""
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < 3:
        raise ValueError("need at least 3 points")
    perplexity = min(perplexity, (n - 1) / 3.0)

    # High-dimensional affinities (symmetrized conditionals).
    dists = _pairwise_sq_dists(points)
    conditionals = np.zeros((n, n))
    for i in range(n):
        row = dists[i].copy()
        row[i] = 0.0
        conditionals[i] = _binary_search_sigma(row, perplexity)
        conditionals[i, i] = 0.0
    p_matrix = (conditionals + conditionals.T) / (2.0 * n)
    p_matrix = np.maximum(p_matrix, 1e-12)

    rng = np.random.default_rng(seed)
    embedding = 1e-2 * rng.standard_normal((n, n_components))
    velocity = np.zeros_like(embedding)
    momentum = 0.5

    for iteration in range(n_iter):
        exaggeration = early_exaggeration if iteration < n_iter // 4 else 1.0
        low_dists = _pairwise_sq_dists(embedding)
        student = 1.0 / (1.0 + low_dists)
        np.fill_diagonal(student, 0.0)
        q_matrix = np.maximum(student / student.sum(), 1e-12)
        coefficient = (exaggeration * p_matrix - q_matrix) * student
        gradient = 4.0 * (
            np.diag(coefficient.sum(axis=1)) - coefficient
        ) @ embedding
        velocity = momentum * velocity - learning_rate * gradient
        embedding = embedding + velocity
        embedding -= embedding.mean(axis=0)
        if iteration == n_iter // 4:
            momentum = 0.8
    return embedding
