"""Prototype importance attribution.

Which of the offline prototypes actually drive a forecast?  For each
prototype we knock out its routing (segments assigned to it lose their
ProtoAttn contribution, keeping the residual path) and measure how much
the forecast moves.  This turns the paper's interpretability narrative
(prototypes = high-level events) into a quantitative tool: a traffic
model should assign high importance to the rush-hour prototypes when
forecasting a weekday morning.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import autograd as ag
from repro.autograd import Tensor
from repro.core.model import FOCUSForecaster


@dataclasses.dataclass
class AttributionResult:
    """Per-prototype forecast sensitivity for a batch of windows."""

    importance: np.ndarray  # (k,) mean |forecast delta| per prototype knockout
    usage: np.ndarray  # (k,) fraction of temporal segments routed to each
    baseline_forecast: np.ndarray  # (B, L_f, N)

    def ranking(self) -> np.ndarray:
        """Prototype indices, most important first."""
        return np.argsort(self.importance)[::-1]


def prototype_importance(
    model: FOCUSForecaster, windows: np.ndarray
) -> AttributionResult:
    """Knock out each prototype's routing and measure the forecast delta.

    ``windows`` is ``(B, L, N)``.  The knockout zeroes the assignment
    rows of the targeted prototype in both branches, so affected segments
    keep only their residual-embedding representation.
    """
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim != 3:
        raise ValueError("expected (B, L, N) windows")
    model.eval()
    mixers = (model.extractor.temporal_mixer, model.extractor.entity_mixer)
    if not all(hasattr(m, "assignment_weights") for m in mixers):
        raise RuntimeError("prototype attribution requires the ProtoAttn mixer")
    k = model.config.num_prototypes

    with ag.no_grad():
        baseline = model(Tensor(windows)).data
    usage = np.bincount(
        model.extractor.temporal_mixer.last_assignment_.reshape(-1), minlength=k
    ).astype(float)
    usage /= max(usage.sum(), 1.0)

    importance = np.zeros(k)
    originals = [mixer.assignment_weights for mixer in mixers]
    try:
        for proto in range(k):
            for mixer, original in zip(mixers, originals):
                def masked(segments, mixer=mixer, original=original, proto=proto):
                    weights = original(segments)
                    weights = weights.copy()
                    weights[..., proto] = 0.0
                    return weights

                mixer.assignment_weights = masked
            with ag.no_grad():
                knocked = model(Tensor(windows)).data
            importance[proto] = float(np.abs(knocked - baseline).mean())
            for mixer, original in zip(mixers, originals):
                mixer.assignment_weights = original
    finally:
        for mixer, original in zip(mixers, originals):
            mixer.assignment_weights = original
    return AttributionResult(
        importance=importance, usage=usage, baseline_forecast=baseline
    )
