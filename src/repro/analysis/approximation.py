"""Prototype-based series approximation (paper Fig. 11).

The paper's case study decomposes a day-long sequence into ``k = 8``
prototypes, restoring each prototype copy to the original segment's mean
and standard deviation, and shows the reconstruction tracks the real
series closely.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.clustering import SegmentClusterer
from repro.data.segments import merge_segments, segment_series


@dataclasses.dataclass
class ApproximationResult:
    """Reconstruction of a 1-D series from prototypes."""

    original: np.ndarray
    approximation: np.ndarray
    labels: np.ndarray
    mse: float
    correlation: float


def approximate_series(
    series: np.ndarray,
    clusterer: SegmentClusterer,
    match_moments: bool = True,
) -> ApproximationResult:
    """Reconstruct a 1-D series by its nearest prototypes.

    The trailing remainder (series length modulo segment length) is
    dropped, mirroring the clustering segmentation.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValueError("expected a 1-D series")
    p = clusterer.config.segment_length
    segments = segment_series(series, p)
    approx_segments = clusterer.reconstruct(segments, match_moments=match_moments)
    labels = clusterer.assign(segments)
    approximation = merge_segments(approx_segments)
    original = series[: len(approximation)]
    error = float(((approximation - original) ** 2).mean())
    if original.std() > 1e-12 and approximation.std() > 1e-12:
        corr = float(np.corrcoef(original, approximation)[0, 1])
    else:
        corr = 0.0
    return ApproximationResult(
        original=original,
        approximation=approximation,
        labels=labels,
        mse=error,
        correlation=corr,
    )
